#ifndef OWLQR_CORE_TYPE_COMPAT_H_
#define OWLQR_CORE_TYPE_COMPAT_H_

#include <functional>
#include <vector>

#include "core/rewriting_context.h"
#include "core/type_map.h"
#include "cq/cq.h"
#include "ndl/program.h"

namespace owlqr {

// Can a unary atom A(z) be satisfied when z is mapped according to word `wz`
// (epsilon = an individual, checked by the data atoms of At)?
bool UnaryAtomCompatible(const RewritingContext& ctx, int concept_id, int wz);

// Can a binary atom P(y, z) be satisfied when y, z are mapped to the words
// wy, wz under a common individual (conditions (i)-(iii) of Section 3.2)?
bool BinaryAtomCompatible(const RewritingContext& ctx, int predicate_id,
                          int wy, int wz);

// Checks the full compatibility of `type` with the variable set `dom` (all
// in the domain of `type`): answer variables map to epsilon, and every atom
// of `query` within dom passes the unary/binary conditions.
bool TypeCompatible(const RewritingContext& ctx, const ConjunctiveQuery& query,
                    const TypeMap& type, const std::vector<int>& dom);

// Emits the conjunction At^type over the variables `dom` into `body`
// (atoms (a)-(c) of Section 3.2):
//   (a) data atoms for all-epsilon atoms of the query within dom,
//   (b) equalities y = z for binary atoms with a non-epsilon endpoint,
//   (c) A_rho(z) for z with type(z) = rho.w.
void EmitTypeAtoms(const RewritingContext& ctx, const ConjunctiveQuery& query,
                   const TypeMap& type, const std::vector<int>& dom,
                   NdlProgram* out, std::vector<NdlAtom>* body);

// Enumerates all total types over `vars` with words of length <= max_length
// that are compatible (TypeCompatible) and agree with `constraint` on its
// domain.  Calls `yield` for each.
void EnumerateCompatibleTypes(const RewritingContext& ctx,
                              const ConjunctiveQuery& query,
                              const std::vector<int>& vars,
                              const std::vector<int>& all_words,
                              const TypeMap& constraint,
                              const std::function<void(const TypeMap&)>& yield);

}  // namespace owlqr

#endif  // OWLQR_CORE_TYPE_COMPAT_H_
