#ifndef OWLQR_CORE_TYPE_MAP_H_
#define OWLQR_CORE_TYPE_MAP_H_

#include <string>
#include <utility>
#include <vector>

#include "ontology/word_graph.h"

namespace owlqr {

// A type (Sections 3.2/3.3): a partial map from query variables to words of
// W_T.  Variables mapped to WordTable::kEpsilon stand for individuals;
// variables not in the domain are unconstrained.  Stored as a sorted
// (variable, word) list, so TypeMap values are directly comparable and usable
// as map keys.
class TypeMap {
 public:
  TypeMap() = default;

  // Returns the word for `var`, or -1 if var is not in the domain.
  int Get(int var) const {
    for (const auto& [v, w] : entries_) {
      if (v == var) return w;
    }
    return -1;
  }

  bool InDomain(int var) const { return Get(var) >= 0; }

  // Sets var -> word (overwrites).
  void Set(int var, int word) {
    for (auto& [v, w] : entries_) {
      if (v == var) {
        w = word;
        return;
      }
    }
    entries_.emplace_back(var, word);
    for (size_t i = entries_.size(); i > 1; --i) {
      if (entries_[i - 1].first < entries_[i - 2].first) {
        std::swap(entries_[i - 1], entries_[i - 2]);
      } else {
        break;
      }
    }
  }

  // The restriction of this map to `vars`; every var must be in the domain.
  TypeMap Restrict(const std::vector<int>& vars) const {
    TypeMap out;
    for (int v : vars) {
      int w = Get(v);
      if (w >= 0) out.Set(v, w);
    }
    return out;
  }

  // The union of two maps with disjoint-or-agreeing domains; agreement is the
  // caller's responsibility (later entries win on clash).
  static TypeMap Union(const TypeMap& a, const TypeMap& b) {
    TypeMap out = a;
    for (const auto& [v, w] : b.entries_) out.Set(v, w);
    return out;
  }

  // True if the maps agree on every variable in both domains.
  bool AgreesWith(const TypeMap& other) const {
    for (const auto& [v, w] : entries_) {
      int ow = other.Get(v);
      if (ow >= 0 && ow != w) return false;
    }
    return true;
  }

  const std::vector<std::pair<int, int>>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }

  bool operator==(const TypeMap& o) const { return entries_ == o.entries_; }
  bool operator<(const TypeMap& o) const { return entries_ < o.entries_; }

  // A short stable name fragment for predicate naming.
  std::string Name(const WordTable& words, const Vocabulary& vocab) const {
    std::string out;
    for (const auto& [v, w] : entries_) {
      if (!out.empty()) out += ',';
      out += std::to_string(v) + ">" + words.Name(w, vocab);
    }
    return out.empty() ? "e" : out;
  }

 private:
  std::vector<std::pair<int, int>> entries_;  // Sorted by variable.
};

}  // namespace owlqr

#endif  // OWLQR_CORE_TYPE_MAP_H_
