#ifndef OWLQR_SYNTAX_PARSER_H_
#define OWLQR_SYNTAX_PARSER_H_

#include <optional>
#include <string>
#include <string_view>

#include "cq/cq.h"
#include "data/data_instance.h"
#include "ontology/tbox.h"

namespace owlqr {

// Line-based ontology syntax ('#' starts a comment):
//
//   Manager SUB Employee            concept inclusion
//   Employee SUB EX worksFor        A <= exists worksFor
//   EX worksFor- SUB Project        exists worksFor^- <= Project
//   TOP SUB EX partOf               top on the left-hand side
//   manages SUBR worksFor           role inclusion (trailing '-' = inverse)
//   REFLEXIVE knows
//   DISJOINT Manager Intern
//   DISJOINT-ROLES manages reports-
//   IRREFLEXIVE manages
//
// On success appends the axioms to `tbox` (call tbox->Normalize() before
// rewriting); on failure returns false and describes the problem in `error`.
bool ParseTBox(std::string_view text, TBox* tbox, std::string* error);

// Conjunctive query syntax:
//
//   q(x, y) :- worksFor(x, z), Manager(z), knows(z, y)
//
// Unary atoms are concept atoms, binary atoms are role atoms.  Variables in
// the head are the answer variables.
std::optional<ConjunctiveQuery> ParseQuery(std::string_view text,
                                           Vocabulary* vocabulary,
                                           std::string* error);

// Data syntax (one fact per line, '.' optional, '#' comments):
//
//   Manager(ann).  worksFor(bob, crm).
bool ParseData(std::string_view text, DataInstance* data, std::string* error);

// Round-trip printer for ontologies in the ParseTBox syntax (normalization
// axioms included once normalized).
std::string TBoxToString(const TBox& tbox);

}  // namespace owlqr

#endif  // OWLQR_SYNTAX_PARSER_H_
