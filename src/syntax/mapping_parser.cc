#include "syntax/mapping_parser.h"

#include <cctype>
#include <map>
#include <vector>

#include "util/strings.h"

namespace owlqr {

namespace {

struct RawAtom {
  std::string name;
  std::vector<std::string> args;  // Quoted constants keep a leading '\"'.
};

// Parses name(arg, ...) where quoted arguments are marked with a leading
// double quote in the result.
bool ParseRawAtom(std::string_view text, size_t* pos, RawAtom* atom,
                  std::string* error) {
  atom->name.clear();
  atom->args.clear();
  while (*pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[*pos]))) {
    ++*pos;
  }
  while (*pos < text.size() && text[*pos] != '(' && text[*pos] != ',' &&
         !std::isspace(static_cast<unsigned char>(text[*pos]))) {
    atom->name.push_back(text[(*pos)++]);
  }
  if (atom->name.empty()) {
    *error = "expected an atom";
    return false;
  }
  if (*pos >= text.size() || text[*pos] != '(') {
    *error = "expected '(' after " + atom->name;
    return false;
  }
  ++*pos;
  while (true) {
    while (*pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[*pos]))) {
      ++*pos;
    }
    if (*pos >= text.size()) {
      *error = "unterminated atom " + atom->name;
      return false;
    }
    char c = text[*pos];
    if (c == ')') {
      ++*pos;
      return true;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      ++*pos;
      std::string value = "\"";
      while (*pos < text.size() && text[*pos] != quote) {
        value.push_back(text[(*pos)++]);
      }
      if (*pos >= text.size()) {
        *error = "unterminated string in " + atom->name;
        return false;
      }
      ++*pos;  // Closing quote.
      atom->args.push_back(value);
    } else {
      std::string value;
      while (*pos < text.size() && text[*pos] != ',' && text[*pos] != ')' &&
             !std::isspace(static_cast<unsigned char>(text[*pos]))) {
        value.push_back(text[(*pos)++]);
      }
      if (value.empty()) {
        *error = "empty argument in " + atom->name;
        return false;
      }
      atom->args.push_back(value);
    }
    while (*pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[*pos]))) {
      ++*pos;
    }
    if (*pos < text.size() && text[*pos] == ',') ++*pos;
  }
}

}  // namespace

bool ParseMapping(std::string_view text, GavMapping* mapping,
                  std::string* error) {
  Vocabulary* vocab = mapping->vocabulary();
  TableStore* tables = mapping->tables();
  int line_number = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_number;
    std::string_view line = StripWhitespace(raw_line);
    if (!line.empty()) {
      size_t hash = line.find('#');
      if (hash != std::string_view::npos) line = line.substr(0, hash);
      line = StripWhitespace(line);
    }
    if (line.empty()) continue;
    auto fail = [&](const std::string& message) {
      *error = "line " + std::to_string(line_number) + ": " + message;
      return false;
    };
    size_t arrow = line.find("<-");
    if (arrow == std::string_view::npos) return fail("expected '<-'");

    RawAtom head;
    {
      size_t pos = 0;
      if (!ParseRawAtom(line.substr(0, arrow), &pos, &head, error)) {
        return fail(*error);
      }
    }
    if (head.args.empty() || head.args.size() > 2) {
      return fail("mapping heads must be unary or binary");
    }
    // Head arguments must be plain variables.
    std::map<std::string, int> rule_vars;
    auto var_id = [&](const std::string& name) {
      auto [it, inserted] =
          rule_vars.emplace(name, static_cast<int>(rule_vars.size()));
      return it->second;
    };
    std::vector<int> head_vars;
    for (const std::string& arg : head.args) {
      if (!arg.empty() && arg[0] == '"') {
        return fail("head arguments must be variables");
      }
      head_vars.push_back(var_id(arg));
    }

    std::vector<MappingAtom> body;
    std::string_view body_text = line.substr(arrow + 2);
    size_t pos = 0;
    while (true) {
      while (pos < body_text.size() &&
             (std::isspace(static_cast<unsigned char>(body_text[pos])) ||
              body_text[pos] == ',' || body_text[pos] == '.')) {
        ++pos;
      }
      if (pos >= body_text.size()) break;
      RawAtom atom;
      if (!ParseRawAtom(body_text, &pos, &atom, error)) return fail(*error);
      int existing = tables->FindTable(atom.name);
      if (existing >= 0 &&
          tables->TableArity(existing) != static_cast<int>(atom.args.size())) {
        return fail("table " + atom.name + " used with inconsistent arity");
      }
      MappingAtom mapped;
      mapped.table =
          tables->AddTable(atom.name, static_cast<int>(atom.args.size()));
      for (const std::string& arg : atom.args) {
        if (!arg.empty() && arg[0] == '"') {
          mapped.args.push_back(
              Term::Const(vocab->InternIndividual(arg.substr(1))));
        } else {
          mapped.args.push_back(Term::Var(var_id(arg)));
        }
      }
      body.push_back(std::move(mapped));
    }
    if (body.empty()) return fail("mapping rules need a nonempty body");
    // Every head variable must be bound by the body.
    for (int v : head_vars) {
      bool bound = false;
      for (const MappingAtom& atom : body) {
        for (const Term& t : atom.args) {
          bound = bound || (!t.is_constant && t.value == v);
        }
      }
      if (!bound) return fail("head variable unbound in the body");
    }

    if (head.args.size() == 1) {
      mapping->AddConceptRule(vocab->InternConcept(head.name), head_vars[0],
                              std::move(body));
    } else {
      mapping->AddRoleRule(vocab->InternPredicate(head.name), head_vars[0],
                           head_vars[1], std::move(body));
    }
  }
  return true;
}

}  // namespace owlqr
