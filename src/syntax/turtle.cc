#include "syntax/turtle.h"

#include <cctype>
#include <vector>

#include "util/strings.h"

namespace owlqr {

namespace {

struct Token {
  enum class Kind { kName, kA, kDot, kSemicolon, kComma, kDirective, kEnd };
  Kind kind;
  std::string text;  // Local name for kName, directive text for kDirective.
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Token Next(std::string* error) {
    SkipSpaceAndComments();
    if (pos_ >= text_.size()) return {Token::Kind::kEnd, ""};
    char c = text_[pos_];
    if (c == '.') {
      ++pos_;
      return {Token::Kind::kDot, "."};
    }
    if (c == ';') {
      ++pos_;
      return {Token::Kind::kSemicolon, ";"};
    }
    if (c == ',') {
      ++pos_;
      return {Token::Kind::kComma, ","};
    }
    if (c == '@') {
      size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      return {Token::Kind::kDirective,
              std::string(text_.substr(start, pos_ - start))};
    }
    if (c == '<') {
      size_t end = text_.find('>', pos_);
      if (end == std::string_view::npos) {
        *error = "unterminated IRI";
        return {Token::Kind::kEnd, ""};
      }
      std::string_view iri = text_.substr(pos_ + 1, end - pos_ - 1);
      pos_ = end + 1;
      return {Token::Kind::kName, LocalName(iri)};
    }
    if (c == '"') {
      *error = "literals are not supported in this Turtle subset";
      return {Token::Kind::kEnd, ""};
    }
    // Prefixed name or the 'a' keyword.
    size_t start = pos_;
    while (pos_ < text_.size() && !std::isspace(static_cast<unsigned char>(
                                      text_[pos_])) &&
           text_[pos_] != ';' && text_[pos_] != ',' &&
           !(text_[pos_] == '.' && IsTripleTerminator(pos_))) {
      ++pos_;
    }
    std::string_view word = text_.substr(start, pos_ - start);
    if (word == "a") return {Token::Kind::kA, "a"};
    return {Token::Kind::kName, LocalName(word)};
  }

 private:
  // A '.' terminates a triple only when followed by whitespace/EOF (so that
  // names like v1.2 would not be split; conservative).
  bool IsTripleTerminator(size_t dot) const {
    return dot + 1 >= text_.size() ||
           std::isspace(static_cast<unsigned char>(text_[dot + 1]));
  }

  void SkipSpaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        return;
      }
    }
  }

  static std::string LocalName(std::string_view qualified) {
    size_t cut = qualified.find_last_of("/#:");
    if (cut == std::string_view::npos) return std::string(qualified);
    return std::string(qualified.substr(cut + 1));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

bool ParseTurtle(std::string_view text, DataInstance* data,
                 std::string* error) {
  Vocabulary* vocab = data->vocabulary();
  Lexer lexer(text);
  while (true) {
    Token token = lexer.Next(error);
    if (!error->empty()) return false;
    if (token.kind == Token::Kind::kEnd) return true;
    if (token.kind == Token::Kind::kDirective) continue;  // @prefix / @base.
    if (token.kind != Token::Kind::kName) {
      *error = "expected a subject, got '" + token.text + "'";
      return false;
    }
    int subject = vocab->InternIndividual(token.text);
    // Predicate lists separated by ';', object lists by ','.
    while (true) {
      Token predicate = lexer.Next(error);
      if (!error->empty()) return false;
      bool is_type = predicate.kind == Token::Kind::kA;
      if (!is_type && predicate.kind != Token::Kind::kName) {
        *error = "expected a predicate after subject";
        return false;
      }
      while (true) {
        Token object = lexer.Next(error);
        if (!error->empty()) return false;
        if (object.kind != Token::Kind::kName) {
          *error = "expected an object";
          return false;
        }
        if (is_type) {
          data->AddConceptAssertion(vocab->InternConcept(object.text),
                                    subject);
        } else {
          data->AddRoleAssertion(vocab->InternPredicate(predicate.text),
                                 subject,
                                 vocab->InternIndividual(object.text));
        }
        Token sep = lexer.Next(error);
        if (!error->empty()) return false;
        if (sep.kind == Token::Kind::kComma) continue;
        if (sep.kind == Token::Kind::kSemicolon) break;
        if (sep.kind == Token::Kind::kDot) {
          goto next_subject;
        }
        *error = "expected '.', ';' or ',' after an object";
        return false;
      }
    }
  next_subject:;
  }
}

std::string WriteTurtle(const DataInstance& data) {
  const Vocabulary& vocab = *data.vocabulary();
  std::string out = "@prefix : <http://owlqr.example.org/> .\n";
  for (int concept_id : data.ActiveConcepts()) {
    for (int a : data.ConceptMembers(concept_id)) {
      out += ":" + vocab.IndividualName(a) + " a :" +
             vocab.ConceptName(concept_id) + " .\n";
    }
  }
  for (int predicate : data.ActivePredicates()) {
    for (auto [s, o] : data.RolePairs(predicate)) {
      out += ":" + vocab.IndividualName(s) + " :" +
             vocab.PredicateName(predicate) + " :" +
             vocab.IndividualName(o) + " .\n";
    }
  }
  return out;
}

}  // namespace owlqr
