#include "syntax/ndl_parser.h"

#include <cctype>
#include <map>
#include <set>
#include <vector>

#include "util/strings.h"

namespace owlqr {

namespace {


struct TextAtom {
  std::string name;
  std::vector<std::string> args;
};

// Parses "name(arg, ...)" (name may be "=" or contain brackets with commas,
// so the name is everything up to the *last* '(' before a balanced arg
// list... in practice our names never contain parentheses, so the first '('
// terminates the name).
bool ParseOneAtom(std::string_view text, size_t* pos, TextAtom* atom,
                  std::string* error) {
  atom->name.clear();
  atom->args.clear();
  while (*pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[*pos]))) {
    ++*pos;
  }
  while (*pos < text.size() && text[*pos] != '(' &&
         !std::isspace(static_cast<unsigned char>(text[*pos]))) {
    atom->name.push_back(text[(*pos)++]);
  }
  if (atom->name.empty()) {
    *error = "expected an atom";
    return false;
  }
  if (*pos >= text.size() || text[*pos] != '(') {
    *error = "expected '(' after " + atom->name;
    return false;
  }
  ++*pos;
  std::string current;
  while (*pos < text.size()) {
    char c = text[(*pos)++];
    if (c == ',' || c == ')') {
      std::string arg(StripWhitespace(current));
      current.clear();
      if (!arg.empty()) atom->args.push_back(arg);
      if (c == ')') return true;
      if (arg.empty()) {
        *error = "empty argument in " + atom->name;
        return false;
      }
    } else {
      current.push_back(c);
    }
  }
  *error = "unterminated atom " + atom->name;
  return false;
}

bool ParseAtomList(std::string_view text, std::vector<TextAtom>* atoms,
                   std::string* error) {
  size_t pos = 0;
  while (true) {
    while (pos < text.size() &&
           (std::isspace(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '&')) {
      ++pos;
    }
    if (pos >= text.size()) return true;
    TextAtom atom;
    if (!ParseOneAtom(text, &pos, &atom, error)) return false;
    atoms->push_back(std::move(atom));
  }
}

}  // namespace

std::optional<NdlProgram> ParseNdlProgram(std::string_view text,
                                          Vocabulary* vocabulary,
                                          std::string* error) {
  struct TextClause {
    TextAtom head;
    std::vector<TextAtom> body;
  };
  std::vector<TextClause> clauses;
  std::string goal_name;

  int line_number = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_number;
    std::string_view line = StripWhitespace(raw_line);
    if (line.empty() || line[0] == '#') continue;
    auto fail = [&](const std::string& message) {
      *error = "line " + std::to_string(line_number) + ": " + message;
      return std::nullopt;
    };
    if (StartsWith(line, "goal:")) {
      goal_name = std::string(StripWhitespace(line.substr(5)));
      continue;
    }
    size_t arrow = line.find("<-");
    if (arrow == std::string_view::npos) {
      return fail("expected '<-'");
    }
    TextClause clause;
    {
      size_t pos = 0;
      if (!ParseOneAtom(line.substr(0, arrow), &pos, &clause.head, error)) {
        return fail(*error);
      }
    }
    if (!ParseAtomList(line.substr(arrow + 2), &clause.body, error)) {
      return fail(*error);
    }
    clauses.push_back(std::move(clause));
  }

  // Pass 1: head names are IDB.
  std::set<std::string> idb_names;
  for (const TextClause& c : clauses) idb_names.insert(c.head.name);
  if (!goal_name.empty()) idb_names.insert(goal_name);

  NdlProgram program(vocabulary);
  std::map<std::string, int> var_ids;  // Global names; clauses re-map below.
  auto resolve = [&](const TextAtom& atom) -> int {
    if (atom.name == "=") return program.EqualityPredicate();
    if (atom.name == "TOP") return program.AdomPredicate();
    if (idb_names.count(atom.name) > 0) {
      return program.AddIdbPredicate(atom.name,
                                     static_cast<int>(atom.args.size()));
    }
    if (atom.args.size() == 1) {
      return program.AddConceptPredicate(
          vocabulary->InternConcept(atom.name));
    }
    return program.AddRolePredicate(vocabulary->InternPredicate(atom.name));
  };

  for (const TextClause& c : clauses) {
    std::map<std::string, int> clause_vars;
    auto term = [&](const std::string& arg) -> Term {
      if (arg.size() >= 2 && arg[0] == 'v' &&
          std::isdigit(static_cast<unsigned char>(arg[1]))) {
        bool numeric = true;
        for (size_t i = 1; i < arg.size(); ++i) {
          numeric = numeric && std::isdigit(static_cast<unsigned char>(arg[i]));
        }
        if (numeric) {
          auto [it, inserted] =
              clause_vars.emplace(arg, static_cast<int>(clause_vars.size()));
          return Term::Var(it->second);
        }
      }
      return Term::Const(vocabulary->InternIndividual(arg));
    };
    NdlClause clause;
    clause.head.predicate = resolve(c.head);
    for (const std::string& arg : c.head.args) {
      clause.head.args.push_back(term(arg));
    }
    for (const TextAtom& atom : c.body) {
      NdlAtom body_atom;
      body_atom.predicate = resolve(atom);
      for (const std::string& arg : atom.args) {
        body_atom.args.push_back(term(arg));
      }
      clause.body.push_back(std::move(body_atom));
    }
    program.AddClause(std::move(clause));
  }
  if (!goal_name.empty()) {
    for (int p = 0; p < program.num_predicates(); ++p) {
      if (program.predicate(p).name == goal_name) program.SetGoal(p);
    }
    if (program.goal() < 0) {
      *error = "goal predicate " + goal_name + " has no clauses";
      return std::nullopt;
    }
  }
  return program;
}

}  // namespace owlqr
