#include "syntax/sql_export.h"

#include <cctype>
#include <map>
#include <set>
#include <vector>

#include "util/logging.h"

namespace owlqr {

namespace {

// Sanitises an arbitrary predicate name into a unique SQL identifier.
class NameTable {
 public:
  std::string For(const std::string& prefix, int key,
                  const std::string& name) {
    auto it = assigned_.find({prefix, key});
    if (it != assigned_.end()) return it->second;
    std::string base = prefix;
    for (char c : name) {
      base.push_back(std::isalnum(static_cast<unsigned char>(c))
                         ? static_cast<char>(std::tolower(
                               static_cast<unsigned char>(c)))
                         : '_');
    }
    std::string candidate = base;
    int suffix = 1;
    while (!used_.insert(candidate).second) {
      candidate = base + "_" + std::to_string(suffix++);
    }
    assigned_[{prefix, key}] = candidate;
    return candidate;
  }

 private:
  std::map<std::pair<std::string, int>, std::string> assigned_;
  std::set<std::string> used_;
};

std::string Quote(const std::string& text) {
  std::string out = "'";
  for (char c : text) {
    out.push_back(c);
    if (c == '\'') out.push_back('\'');
  }
  out += "'";
  return out;
}

std::vector<std::string> ColumnNames(int arity, PredicateKind kind) {
  if (kind == PredicateKind::kConceptEdb) return {"ind"};
  if (kind == PredicateKind::kRoleEdb) return {"s", "o"};
  std::vector<std::string> cols;
  for (int i = 0; i < arity; ++i) cols.push_back("a" + std::to_string(i));
  return cols;
}

}  // namespace

SqlExport ExportSql(const NdlProgram& program) {
  OWLQR_CHECK(program.IsNonrecursive());
  const Vocabulary& vocab = *program.vocabulary();
  NameTable names;
  SqlExport out;

  // Table/view name per predicate.
  std::vector<std::string> sql_name(program.num_predicates());
  for (int p = 0; p < program.num_predicates(); ++p) {
    const PredicateInfo& info = program.predicate(p);
    switch (info.kind) {
      case PredicateKind::kIdb:
        sql_name[p] = names.For("v_", p, info.name);
        break;
      case PredicateKind::kConceptEdb:
        sql_name[p] = names.For("c_", p, info.name);
        break;
      case PredicateKind::kRoleEdb:
        sql_name[p] = names.For("r_", p, info.name);
        break;
      case PredicateKind::kTableEdb:
        sql_name[p] = names.For("t_", p, info.name);
        break;
      case PredicateKind::kEquality:
      case PredicateKind::kAdom:
        break;  // Built-ins; no table.
    }
  }

  // Base tables + the adom view over them.
  std::vector<std::string> adom_selects;
  for (int p = 0; p < program.num_predicates(); ++p) {
    const PredicateInfo& info = program.predicate(p);
    if (info.kind != PredicateKind::kConceptEdb &&
        info.kind != PredicateKind::kRoleEdb &&
        info.kind != PredicateKind::kTableEdb) {
      continue;
    }
    std::vector<std::string> cols = ColumnNames(info.arity, info.kind);
    out.create_tables += "CREATE TABLE " + sql_name[p] + "(";
    for (size_t i = 0; i < cols.size(); ++i) {
      if (i > 0) out.create_tables += ", ";
      out.create_tables += cols[i] + " TEXT";
    }
    out.create_tables += ");\n";
    for (const std::string& col : cols) {
      adom_selects.push_back("SELECT " + col + " AS ind FROM " + sql_name[p]);
    }
  }
  out.create_views += "CREATE VIEW adom(ind) AS\n  ";
  if (adom_selects.empty()) {
    out.create_views += "SELECT NULL WHERE 0";
  } else {
    for (size_t i = 0; i < adom_selects.size(); ++i) {
      if (i > 0) out.create_views += "\n  UNION ";
      out.create_views += adom_selects[i];
    }
  }
  out.create_views += ";\n";

  // One view per IDB predicate, dependencies first.
  for (int p : program.TopologicalOrder()) {
    const PredicateInfo& info = program.predicate(p);
    std::vector<std::string> head_cols;
    for (int i = 0; i < info.arity; ++i) {
      head_cols.push_back("a" + std::to_string(i));
    }
    std::string view = "CREATE VIEW " + sql_name[p] + "(";
    if (info.arity == 0) {
      view += "tt";  // 0-ary predicates: a single marker column.
    } else {
      for (size_t i = 0; i < head_cols.size(); ++i) {
        if (i > 0) view += ", ";
        view += head_cols[i];
      }
    }
    view += ") AS\n";
    bool first_clause = true;
    for (int ci : program.ClausesFor(p)) {
      const NdlClause& clause = program.clause(ci);
      if (!first_clause) view += "  UNION\n";
      first_clause = false;

      // FROM items and the first source column per variable.
      std::vector<std::string> from_items;
      std::map<int, std::string> var_column;
      std::vector<std::string> where;
      std::vector<const NdlAtom*> equalities;
      int alias = 0;
      auto add_source = [&](const std::string& relation,
                            const std::vector<std::string>& cols,
                            const NdlAtom& atom) {
        std::string a = "x" + std::to_string(alias++);
        from_items.push_back(relation + " AS " + a);
        for (size_t i = 0; i < atom.args.size(); ++i) {
          std::string col = a + "." + cols[i];
          const Term& t = atom.args[i];
          if (t.is_constant) {
            where.push_back(col + " = " + Quote(vocab.IndividualName(t.value)));
          } else {
            auto [it, inserted] = var_column.emplace(t.value, col);
            if (!inserted) where.push_back(col + " = " + it->second);
          }
        }
      };
      for (const NdlAtom& atom : clause.body) {
        const PredicateInfo& ainfo = program.predicate(atom.predicate);
        switch (ainfo.kind) {
          case PredicateKind::kEquality:
            equalities.push_back(&atom);
            break;
          case PredicateKind::kAdom:
            add_source("adom", {"ind"}, atom);
            break;
          case PredicateKind::kIdb:
            add_source(sql_name[atom.predicate],
                       ainfo.arity == 0 ? std::vector<std::string>{}
                                        : ColumnNames(ainfo.arity,
                                                      PredicateKind::kIdb),
                       atom);
            break;
          default:
            add_source(sql_name[atom.predicate],
                       ColumnNames(ainfo.arity, ainfo.kind), atom);
            break;
        }
      }
      // Equality atoms: anchor unsourced variables on adom, then compare.
      auto term_expr = [&](const Term& t) -> std::string {
        if (t.is_constant) return Quote(vocab.IndividualName(t.value));
        auto it = var_column.find(t.value);
        if (it != var_column.end()) return it->second;
        std::string a = "x" + std::to_string(alias++);
        from_items.push_back("adom AS " + a);
        var_column.emplace(t.value, a + ".ind");
        return a + ".ind";
      };
      for (const NdlAtom* eq : equalities) {
        std::string lhs = term_expr(eq->args[0]);
        std::string rhs = term_expr(eq->args[1]);
        where.push_back(lhs + " = " + rhs);
      }
      // Head columns for IDB atoms with arity 0 (marker) handled below.
      view += "  SELECT ";
      if (info.arity == 0) {
        view += "1 AS tt";
      } else {
        for (size_t i = 0; i < clause.head.args.size(); ++i) {
          if (i > 0) view += ", ";
          const Term& t = clause.head.args[i];
          view += term_expr(t) + " AS " + head_cols[i];
        }
      }
      if (!from_items.empty()) {
        view += "\n  FROM ";
        for (size_t i = 0; i < from_items.size(); ++i) {
          if (i > 0) view += ", ";
          view += from_items[i];
        }
      }
      if (!where.empty()) {
        view += "\n  WHERE ";
        for (size_t i = 0; i < where.size(); ++i) {
          if (i > 0) view += " AND ";
          view += where[i];
        }
      }
      view += "\n";
    }
    if (first_clause) {
      // No clauses: an empty view of the right shape.
      view += "  SELECT ";
      if (info.arity == 0) {
        view += "1 AS tt";
      } else {
        for (size_t i = 0; i < head_cols.size(); ++i) {
          if (i > 0) view += ", ";
          view += "NULL AS " + head_cols[i];
        }
      }
      view += " WHERE 0\n";
    }
    view += ";\n";
    out.create_views += view;
  }
  OWLQR_CHECK(program.goal() >= 0);
  out.goal_view = sql_name[program.goal()];
  return out;
}

}  // namespace owlqr
