#ifndef OWLQR_SYNTAX_SQL_EXPORT_H_
#define OWLQR_SYNTAX_SQL_EXPORT_H_

#include <string>

#include "ndl/program.h"

namespace owlqr {

// Section 6 asks "whether our rewritings can be efficiently implemented
// using views in standard DBMSs".  This exporter turns an NDL program into
// plain SQL (SQLite dialect): one view per IDB predicate, in dependence
// order, over a simple base-table schema:
//
//   concept C      ->  TABLE c_<name>(ind)
//   role P         ->  TABLE r_<name>(s, o)
//   source table T ->  TABLE t_<name>(a0, ..)
//   active domain  ->  VIEW adom(ind)  (union of all base-table columns)
//
// Each clause becomes a SELECT with the join/equality conditions in WHERE;
// a predicate's clauses are UNIONed (set semantics = datalog semantics).
// The goal predicate's view is `goal_view`.
struct SqlExport {
  std::string create_tables;  // DDL for the base tables used.
  std::string create_views;   // Views in dependence order (adom included).
  std::string goal_view;      // Name of the goal predicate's view.
};

SqlExport ExportSql(const NdlProgram& program);

}  // namespace owlqr

#endif  // OWLQR_SYNTAX_SQL_EXPORT_H_
