#ifndef OWLQR_SYNTAX_MAPPING_PARSER_H_
#define OWLQR_SYNTAX_MAPPING_PARSER_H_

#include <string>
#include <string_view>

#include "core/mapping.h"

namespace owlqr {

// Text syntax for GAV mappings ('#' comments):
//
//   Professor(x) <- staff(x, "professor")
//   Dean(x)      <- staff(x, "dean")
//   teaches(x, y) <- courses(y, x), active(y)
//
// Heads are unary (concept) or binary (role) atoms over the ontology
// vocabulary; bodies are comma-separated atoms over source tables.  Table
// names and arities are inferred from use (declared in `mapping->tables()`).
// Unquoted arguments are rule variables; quoted ones ("..." or '...') are
// individual constants acting as filters.
bool ParseMapping(std::string_view text, GavMapping* mapping,
                  std::string* error);

}  // namespace owlqr

#endif  // OWLQR_SYNTAX_MAPPING_PARSER_H_
