#ifndef OWLQR_SYNTAX_TURTLE_H_
#define OWLQR_SYNTAX_TURTLE_H_

#include <string>
#include <string_view>

#include "data/data_instance.h"

namespace owlqr {

// A small Turtle subset — enough to exchange ABoxes as .ttl files the way
// the paper's experiments did:
//
//   @prefix : <http://example.org/> .
//   :ann a :Professor .
//   :ann :teaches :algebra .
//   :bob a :Professor ; :teaches :logic .
//
// Supported: @prefix/@base directives (recorded and otherwise ignored;
// names resolve to their local part), prefixed names, <IRI>s (local part
// after the last '/', '#' or ':'), the 'a' keyword for concept assertions,
// ';' predicate lists and ',' object lists, '#' comments.  Literals are not
// supported (ABoxes here are unary/binary atoms over individuals).
bool ParseTurtle(std::string_view text, DataInstance* data,
                 std::string* error);

// Serialises a data instance in the subset above (one triple per line,
// default ':' prefix).
std::string WriteTurtle(const DataInstance& data);

}  // namespace owlqr

#endif  // OWLQR_SYNTAX_TURTLE_H_
