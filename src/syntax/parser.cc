#include "syntax/parser.h"

#include <cctype>
#include <sstream>
#include <vector>

#include "util/strings.h"

namespace owlqr {

namespace {

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '[' || c == ']' || c == '+' || c == '#';
}

std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!current.empty()) {
        tokens.push_back(current);
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(current);
  return tokens;
}

// Parses a role token "name" or "name-".
RoleId ParseRoleToken(const std::string& token, Vocabulary* vocab) {
  bool inverse = !token.empty() && token.back() == '-';
  std::string name = inverse ? token.substr(0, token.size() - 1) : token;
  return RoleOf(vocab->InternPredicate(name), inverse);
}

// Parses "TOP", "Name" or the two tokens "EX role".
bool ParseConceptExpr(const std::vector<std::string>& tokens, size_t* pos,
                      Vocabulary* vocab, BasicConcept* out,
                      std::string* error) {
  if (*pos >= tokens.size()) {
    *error = "expected a concept expression";
    return false;
  }
  const std::string& head = tokens[*pos];
  if (head == "TOP") {
    *out = BasicConcept::Top();
    ++*pos;
    return true;
  }
  if (head == "EX") {
    if (*pos + 1 >= tokens.size()) {
      *error = "EX must be followed by a role";
      return false;
    }
    *out = BasicConcept::Exists(ParseRoleToken(tokens[*pos + 1], vocab));
    *pos += 2;
    return true;
  }
  *out = BasicConcept::Atomic(vocab->InternConcept(head));
  ++*pos;
  return true;
}

std::string_view StripComment(std::string_view line) {
  size_t hash = line.find('#');
  // '#' may legitimately occur inside bracketed names like A[P-]; treat a
  // '#' preceded by whitespace or at the start as a comment marker.
  while (hash != std::string_view::npos) {
    if (hash == 0 || std::isspace(static_cast<unsigned char>(line[hash - 1]))) {
      return line.substr(0, hash);
    }
    hash = line.find('#', hash + 1);
  }
  return line;
}

}  // namespace

bool ParseTBox(std::string_view text, TBox* tbox, std::string* error) {
  Vocabulary* vocab = tbox->vocabulary();
  int line_number = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_number;
    std::string_view line = StripWhitespace(StripComment(raw_line));
    if (line.empty()) continue;
    std::vector<std::string> tokens = Tokenize(line);
    auto fail = [&](const std::string& message) {
      std::ostringstream os;
      os << "line " << line_number << ": " << message;
      *error = os.str();
      return false;
    };
    const std::string& head = tokens[0];
    if (head == "REFLEXIVE" || head == "IRREFLEXIVE") {
      if (tokens.size() != 2) return fail(head + " takes one role");
      RoleId role = ParseRoleToken(tokens[1], vocab);
      if (head == "REFLEXIVE") {
        tbox->AddReflexivity(role);
      } else {
        tbox->AddIrreflexivity(role);
      }
      continue;
    }
    if (head == "DISJOINT") {
      size_t pos = 1;
      BasicConcept lhs, rhs;
      if (!ParseConceptExpr(tokens, &pos, vocab, &lhs, error) ||
          !ParseConceptExpr(tokens, &pos, vocab, &rhs, error)) {
        return fail(*error);
      }
      if (pos != tokens.size()) return fail("trailing tokens after DISJOINT");
      tbox->AddConceptDisjointness(lhs, rhs);
      continue;
    }
    if (head == "DISJOINT-ROLES") {
      if (tokens.size() != 3) return fail("DISJOINT-ROLES takes two roles");
      tbox->AddRoleDisjointness(ParseRoleToken(tokens[1], vocab),
                                ParseRoleToken(tokens[2], vocab));
      continue;
    }
    // Role inclusion: "rho SUBR rho'" (trailing '-' marks an inverse).
    if (tokens.size() == 3 && tokens[1] == "SUBR") {
      tbox->AddRoleInclusion(ParseRoleToken(tokens[0], vocab),
                             ParseRoleToken(tokens[2], vocab));
      continue;
    }
    // Concept inclusion: <expr> SUB <expr>.
    size_t pos = 0;
    BasicConcept lhs, rhs;
    if (!ParseConceptExpr(tokens, &pos, vocab, &lhs, error)) {
      return fail(*error);
    }
    if (pos >= tokens.size() || tokens[pos] != "SUB") {
      return fail("expected SUB after the left-hand side");
    }
    ++pos;
    if (!ParseConceptExpr(tokens, &pos, vocab, &rhs, error)) {
      return fail(*error);
    }
    if (pos != tokens.size()) return fail("trailing tokens");
    tbox->AddConceptInclusion(lhs, rhs);
  }
  return true;
}

namespace {

// Parses "name(arg, ...)" starting at *pos; advances past the atom.
bool ParseAtomText(std::string_view text, size_t* pos, std::string* name,
                   std::vector<std::string>* args, std::string* error) {
  name->clear();
  args->clear();
  while (*pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[*pos]))) {
    ++*pos;
  }
  while (*pos < text.size() && IsNameChar(text[*pos])) {
    name->push_back(text[(*pos)++]);
  }
  if (name->empty()) {
    *error = "expected a predicate name";
    return false;
  }
  if (*pos >= text.size() || text[*pos] != '(') {
    *error = "expected '(' after " + *name;
    return false;
  }
  ++*pos;
  std::string current;
  while (*pos < text.size()) {
    char c = text[(*pos)++];
    if (c == ',' || c == ')') {
      std::string arg(StripWhitespace(current));
      if (c == ')' && arg.empty() && args->empty()) {
        return true;  // Zero-argument head, e.g. a Boolean query "q()".
      }
      if (arg.empty()) {
        *error = "empty argument in " + *name;
        return false;
      }
      args->push_back(arg);
      current.clear();
      if (c == ')') return true;
    } else {
      current.push_back(c);
    }
  }
  *error = "unterminated atom " + *name;
  return false;
}

void SkipSeparators(std::string_view text, size_t* pos) {
  while (*pos < text.size() &&
         (std::isspace(static_cast<unsigned char>(text[*pos])) ||
          text[*pos] == ',' || text[*pos] == '.')) {
    ++*pos;
  }
}

}  // namespace

std::optional<ConjunctiveQuery> ParseQuery(std::string_view text,
                                           Vocabulary* vocabulary,
                                           std::string* error) {
  size_t turnstile = text.find(":-");
  if (turnstile == std::string_view::npos) {
    *error = "expected ':-'";
    return std::nullopt;
  }
  ConjunctiveQuery query(vocabulary);
  {
    size_t pos = 0;
    std::string name;
    std::vector<std::string> args;
    std::string_view head = text.substr(0, turnstile);
    if (!ParseAtomText(head, &pos, &name, &args, error)) return std::nullopt;
    for (const std::string& arg : args) {
      query.MarkAnswerVariable(query.AddVariable(arg));
    }
  }
  std::string_view body = text.substr(turnstile + 2);
  size_t pos = 0;
  SkipSeparators(body, &pos);
  while (pos < body.size()) {
    std::string name;
    std::vector<std::string> args;
    if (!ParseAtomText(body, &pos, &name, &args, error)) return std::nullopt;
    if (args.size() == 1) {
      query.AddUnaryAtom(vocabulary->InternConcept(name),
                         query.AddVariable(args[0]));
    } else if (args.size() == 2) {
      int u = query.AddVariable(args[0]);
      int v = query.AddVariable(args[1]);
      query.AddBinaryAtom(vocabulary->InternPredicate(name), u, v);
    } else {
      *error = "atom " + name + " must be unary or binary";
      return std::nullopt;
    }
    SkipSeparators(body, &pos);
  }
  return query;
}

bool ParseData(std::string_view text, DataInstance* data, std::string* error) {
  Vocabulary* vocab = data->vocabulary();
  for (const std::string& raw_line : Split(text, '\n')) {
    std::string_view line = StripWhitespace(StripComment(raw_line));
    size_t pos = 0;
    SkipSeparators(line, &pos);
    while (pos < line.size()) {
      std::string name;
      std::vector<std::string> args;
      if (!ParseAtomText(line, &pos, &name, &args, error)) return false;
      if (args.size() == 1) {
        data->AddConceptAssertion(vocab->InternConcept(name),
                                  vocab->InternIndividual(args[0]));
      } else if (args.size() == 2) {
        data->AddRoleAssertion(vocab->InternPredicate(name),
                               vocab->InternIndividual(args[0]),
                               vocab->InternIndividual(args[1]));
      } else {
        *error = "fact " + name + " must be unary or binary";
        return false;
      }
      SkipSeparators(line, &pos);
    }
  }
  return true;
}

namespace {

std::string ConceptExprToString(const BasicConcept& c, const Vocabulary& v) {
  switch (c.kind) {
    case BasicConcept::Kind::kTop:
      return "TOP";
    case BasicConcept::Kind::kAtomic:
      return v.ConceptName(c.id);
    case BasicConcept::Kind::kExists:
      return "EX " + v.RoleName(c.id);
  }
  return "?";
}

}  // namespace

std::string TBoxToString(const TBox& tbox) {
  const Vocabulary& v = *tbox.vocabulary();
  std::string out;
  for (const ConceptInclusion& ci : tbox.concept_inclusions()) {
    out += ConceptExprToString(ci.lhs, v) + " SUB " +
           ConceptExprToString(ci.rhs, v) + "\n";
  }
  for (const RoleInclusion& ri : tbox.role_inclusions()) {
    out += v.RoleName(ri.lhs) + " SUBR " + v.RoleName(ri.rhs) + "\n";
  }
  for (RoleId r : tbox.reflexive_roles()) {
    out += "REFLEXIVE " + v.RoleName(r) + "\n";
  }
  for (const ConceptDisjointness& cd : tbox.concept_disjointness()) {
    out += "DISJOINT " + ConceptExprToString(cd.lhs, v) + " " +
           ConceptExprToString(cd.rhs, v) + "\n";
  }
  for (const RoleDisjointness& rd : tbox.role_disjointness()) {
    out += "DISJOINT-ROLES " + v.RoleName(rd.lhs) + " " +
           v.RoleName(rd.rhs) + "\n";
  }
  for (RoleId r : tbox.irreflexive_roles()) {
    out += "IRREFLEXIVE " + v.RoleName(r) + "\n";
  }
  return out;
}

}  // namespace owlqr
