#ifndef OWLQR_SYNTAX_NDL_PARSER_H_
#define OWLQR_SYNTAX_NDL_PARSER_H_

#include <optional>
#include <string>
#include <string_view>

#include "ndl/program.h"

namespace owlqr {

// Parses the NdlProgram::ToString() format back into a program:
//
//   goal: G
//   G(v0, v1) <- R(v0, v2) & H(v2, v1)
//   H(v0, v1) <- S(v0, v1) & =(v0, v1) & TOP(v0)
//
// Terms "v<N>" are variables; anything else is an individual constant.
// Predicate kinds are resolved as follows: a name occurring in some clause
// head is IDB; otherwise a unary name is a concept EDB and a binary name a
// role EDB (interned into the vocabulary); "=" is equality and "TOP" the
// active domain.
std::optional<NdlProgram> ParseNdlProgram(std::string_view text,
                                          Vocabulary* vocabulary,
                                          std::string* error);

}  // namespace owlqr

#endif  // OWLQR_SYNTAX_NDL_PARSER_H_
