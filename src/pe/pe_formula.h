#ifndef OWLQR_PE_PE_FORMULA_H_
#define OWLQR_PE_PE_FORMULA_H_

#include <string>
#include <vector>

#include "data/data_instance.h"
#include "ndl/program.h"

namespace owlqr {

// A positive existential (PE) formula in prenex form: a {and, or}-tree over
// concept atoms, role atoms and equalities.  Variables are global ids; the
// formula's answer variables are free, everything else is implicitly
// existentially quantified.  Every inner node carries a schema — the
// variables it exposes to its parent (for Or nodes these are the interface
// variables shared by all disjuncts, which is the shape produced by
// unfolding nonrecursive datalog).
class PeFormula {
 public:
  enum class Kind { kConceptAtom, kRoleAtom, kEquality, kAnd, kOr };

  struct Node {
    Kind kind;
    int symbol = -1;            // Concept / predicate id for atoms.
    std::vector<int> vars;      // Atom arguments, or the inner-node schema.
    std::vector<int> children;  // For kAnd / kOr.
  };

  int AddConceptAtom(int concept_id, int var);
  int AddRoleAtom(int predicate_id, int var0, int var1);
  int AddEquality(int var0, int var1);
  int AddAnd(std::vector<int> children, std::vector<int> schema);
  int AddOr(std::vector<int> children, std::vector<int> schema);

  void SetRoot(int node, std::vector<int> answer_vars);
  int root() const { return root_; }
  const Node& node(int i) const { return nodes_[i]; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const std::vector<int>& answer_vars() const { return answer_vars_; }

  // |phi|: number of symbols (atoms count 1 + arity; and/or count 1).
  long Size() const;
  // The Pi_k measure of Section 2: the maximal number of and/or alternation
  // blocks on a root-to-leaf path.
  int AlternationDepth() const;

  std::string ToString(const Vocabulary& vocabulary) const;

 private:
  std::vector<Node> nodes_;
  int root_ = -1;
  std::vector<int> answer_vars_;
};

// Unfolds an NDL query into an equivalent PE formula by replacing IDB atoms
// with the disjunction of their (renamed) clause bodies.  The formula tree
// can be exponentially larger than the program — that is the Figure 1(b)
// succinctness gap.  Unfolding stops and sets `truncated` once `max_nodes`
// is exceeded.
PeFormula UnfoldToPe(const NdlProgram& program, long max_nodes = 1 << 22,
                     bool* truncated = nullptr);

// The exact unfolded PE size, computed by dynamic programming without
// materialising the formula (saturates at kPeSizeCap).
inline constexpr long kPeSizeCap = 1L << 60;
long UnfoldedPeSize(const NdlProgram& program);

// Evaluates a PE formula over a data instance; returns the sorted answer
// tuples.  Bottom-up relational evaluation — intended for cross-validation
// on small instances.
std::vector<std::vector<int>> EvaluatePe(const PeFormula& formula,
                                         const DataInstance& data);

}  // namespace owlqr

#endif  // OWLQR_PE_PE_FORMULA_H_
