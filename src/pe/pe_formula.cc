#include "pe/pe_formula.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "util/logging.h"

namespace owlqr {

int PeFormula::AddConceptAtom(int concept_id, int var) {
  nodes_.push_back({Kind::kConceptAtom, concept_id, {var}, {}});
  return num_nodes() - 1;
}

int PeFormula::AddRoleAtom(int predicate_id, int var0, int var1) {
  nodes_.push_back({Kind::kRoleAtom, predicate_id, {var0, var1}, {}});
  return num_nodes() - 1;
}

int PeFormula::AddEquality(int var0, int var1) {
  nodes_.push_back({Kind::kEquality, -1, {var0, var1}, {}});
  return num_nodes() - 1;
}

int PeFormula::AddAnd(std::vector<int> children, std::vector<int> schema) {
  nodes_.push_back({Kind::kAnd, -1, std::move(schema), std::move(children)});
  return num_nodes() - 1;
}

int PeFormula::AddOr(std::vector<int> children, std::vector<int> schema) {
  nodes_.push_back({Kind::kOr, -1, std::move(schema), std::move(children)});
  return num_nodes() - 1;
}

void PeFormula::SetRoot(int node, std::vector<int> answer_vars) {
  root_ = node;
  answer_vars_ = std::move(answer_vars);
}

long PeFormula::Size() const {
  long size = 0;
  for (const Node& node : nodes_) {
    switch (node.kind) {
      case Kind::kConceptAtom:
        size += 2;
        break;
      case Kind::kRoleAtom:
      case Kind::kEquality:
        size += 3;
        break;
      case Kind::kAnd:
      case Kind::kOr:
        size += 1;
        break;
    }
  }
  return size;
}

int PeFormula::AlternationDepth() const {
  if (root_ < 0) return 0;
  std::function<int(int)> blocks = [&](int n) -> int {
    const Node& node = nodes_[n];
    if (node.kind != Kind::kAnd && node.kind != Kind::kOr) return 0;
    int best = 1;
    for (int c : node.children) {
      const Node& child = nodes_[c];
      int b = blocks(c);
      if (child.kind == Kind::kAnd || child.kind == Kind::kOr) {
        best = std::max(best, child.kind == node.kind ? b : b + 1);
      }
    }
    return best;
  };
  return blocks(root_);
}

std::string PeFormula::ToString(const Vocabulary& vocabulary) const {
  std::function<std::string(int)> print = [&](int n) -> std::string {
    const Node& node = nodes_[n];
    auto var = [](int v) { return "v" + std::to_string(v); };
    switch (node.kind) {
      case Kind::kConceptAtom:
        return vocabulary.ConceptName(node.symbol) + "(" + var(node.vars[0]) +
               ")";
      case Kind::kRoleAtom:
        return vocabulary.PredicateName(node.symbol) + "(" +
               var(node.vars[0]) + ", " + var(node.vars[1]) + ")";
      case Kind::kEquality:
        return var(node.vars[0]) + " = " + var(node.vars[1]);
      case Kind::kAnd:
      case Kind::kOr: {
        std::string sep = node.kind == Kind::kAnd ? " & " : " | ";
        std::string out = "(";
        for (size_t i = 0; i < node.children.size(); ++i) {
          if (i > 0) out += sep;
          out += print(node.children[i]);
        }
        return out + ")";
      }
    }
    return "?";
  };
  return root_ < 0 ? "" : print(root_);
}

namespace {

class Unfolder {
 public:
  Unfolder(const NdlProgram& program, long max_nodes)
      : program_(program), max_nodes_(max_nodes) {}

  PeFormula Run(bool* truncated) {
    OWLQR_CHECK(program_.goal() >= 0);
    const PredicateInfo& goal = program_.predicate(program_.goal());
    std::vector<int> args;
    for (int i = 0; i < goal.arity; ++i) args.push_back(next_var_++);
    int root = ExpandIdb(program_.goal(), args);
    formula_.SetRoot(root, args);
    if (truncated != nullptr) *truncated = truncated_;
    return std::move(formula_);
  }

 private:
  // Builds the Or-of-clauses formula for `pred` instantiated with `args`.
  int ExpandIdb(int pred, const std::vector<int>& args) {
    std::vector<int> disjuncts;
    for (int ci : program_.ClausesFor(pred)) {
      if (truncated_) break;
      disjuncts.push_back(ExpandClause(program_.clause(ci), args));
    }
    return formula_.AddOr(std::move(disjuncts), args);
  }

  int ExpandClause(const NdlClause& clause, const std::vector<int>& args) {
    // Substitution from clause variables to global PE variables.
    std::map<int, int> subst;
    std::vector<int> conjuncts;
    for (size_t i = 0; i < clause.head.args.size(); ++i) {
      const Term& t = clause.head.args[i];
      OWLQR_CHECK_MSG(!t.is_constant, "constants in heads are not supported");
      auto [it, inserted] = subst.emplace(t.value, args[i]);
      if (!inserted && it->second != args[i]) {
        // Repeated head variable: equate the two interface positions.
        conjuncts.push_back(formula_.AddEquality(it->second, args[i]));
      }
    }
    auto map_term = [&](const Term& t) {
      OWLQR_CHECK_MSG(!t.is_constant, "constants are not supported in PE");
      auto [it, inserted] = subst.emplace(t.value, next_var_);
      if (inserted) ++next_var_;
      return it->second;
    };
    for (const NdlAtom& atom : clause.body) {
      if (formula_.num_nodes() > max_nodes_) {
        truncated_ = true;
        break;
      }
      const PredicateInfo& info = program_.predicate(atom.predicate);
      switch (info.kind) {
        case PredicateKind::kConceptEdb:
          conjuncts.push_back(formula_.AddConceptAtom(
              info.external_id, map_term(atom.args[0])));
          break;
        case PredicateKind::kRoleEdb:
          conjuncts.push_back(formula_.AddRoleAtom(info.external_id,
                                                   map_term(atom.args[0]),
                                                   map_term(atom.args[1])));
          break;
        case PredicateKind::kEquality:
          conjuncts.push_back(formula_.AddEquality(map_term(atom.args[0]),
                                                   map_term(atom.args[1])));
          break;
        case PredicateKind::kAdom: {
          int v = map_term(atom.args[0]);
          conjuncts.push_back(formula_.AddEquality(v, v));
          break;
        }
        case PredicateKind::kTableEdb:
          OWLQR_CHECK_MSG(false,
                          "PE formulas range over the ontology vocabulary; "
                          "unfold through the mapping first");
          break;
        case PredicateKind::kIdb: {
          std::vector<int> call_args;
          for (const Term& t : atom.args) call_args.push_back(map_term(t));
          conjuncts.push_back(ExpandIdb(atom.predicate, call_args));
          break;
        }
      }
    }
    return formula_.AddAnd(std::move(conjuncts), args);
  }

  const NdlProgram& program_;
  long max_nodes_;
  PeFormula formula_;
  int next_var_ = 0;
  bool truncated_ = false;
};

long SaturatingAdd(long a, long b) {
  return std::min(kPeSizeCap, a + std::min(kPeSizeCap - a, b));
}

}  // namespace

PeFormula UnfoldToPe(const NdlProgram& program, long max_nodes,
                     bool* truncated) {
  return Unfolder(program, max_nodes).Run(truncated);
}

long UnfoldedPeSize(const NdlProgram& program) {
  OWLQR_CHECK(program.goal() >= 0);
  std::vector<long> size(program.num_predicates(), 0);
  for (int p : program.TopologicalOrder()) {
    long total = 1;  // The Or node.
    for (int ci : program.ClausesFor(p)) {
      long clause_size = 1;  // The And node.
      for (const NdlAtom& atom : program.clause(ci).body) {
        const PredicateInfo& info = program.predicate(atom.predicate);
        long contribution;
        if (info.kind == PredicateKind::kIdb) {
          contribution = size[atom.predicate];
        } else {
          contribution = 1 + static_cast<long>(atom.args.size());
        }
        clause_size = SaturatingAdd(clause_size, contribution);
      }
      total = SaturatingAdd(total, clause_size);
    }
    size[p] = total;
  }
  return size[program.goal()];
}

namespace {

struct Relation {
  std::vector<int> schema;  // PE variable per column.
  std::vector<std::vector<int>> tuples;
};

Relation Project(const Relation& rel, const std::vector<int>& schema,
                 const std::vector<int>& adom) {
  // Column of each target variable in `rel`, or -1 (then extended over the
  // active domain — only needed for unsafe subformulas).
  std::vector<int> source(schema.size(), -1);
  bool needs_extension = false;
  for (size_t i = 0; i < schema.size(); ++i) {
    for (size_t j = 0; j < rel.schema.size(); ++j) {
      if (rel.schema[j] == schema[i]) source[i] = static_cast<int>(j);
    }
    if (source[i] < 0) needs_extension = true;
  }
  Relation out;
  out.schema = schema;
  std::set<std::vector<int>> seen;
  std::function<void(const std::vector<int>&, std::vector<int>&, size_t)>
      emit = [&](const std::vector<int>& tuple, std::vector<int>& acc,
                 size_t i) {
        if (i == schema.size()) {
          if (seen.insert(acc).second) out.tuples.push_back(acc);
          return;
        }
        if (source[i] >= 0) {
          acc.push_back(tuple[source[i]]);
          emit(tuple, acc, i + 1);
          acc.pop_back();
        } else {
          for (int a : adom) {
            acc.push_back(a);
            emit(tuple, acc, i + 1);
            acc.pop_back();
          }
        }
      };
  (void)needs_extension;
  for (const std::vector<int>& tuple : rel.tuples) {
    std::vector<int> acc;
    emit(tuple, acc, 0);
  }
  return out;
}

Relation Join(const Relation& a, const Relation& b) {
  // Shared columns.
  std::vector<std::pair<int, int>> shared;  // (col in a, col in b).
  std::vector<int> b_extra;                 // Columns of b not in a.
  for (size_t j = 0; j < b.schema.size(); ++j) {
    bool found = false;
    for (size_t i = 0; i < a.schema.size(); ++i) {
      if (a.schema[i] == b.schema[j]) {
        shared.emplace_back(static_cast<int>(i), static_cast<int>(j));
        found = true;
        break;
      }
    }
    if (!found) b_extra.push_back(static_cast<int>(j));
  }
  Relation out;
  out.schema = a.schema;
  for (int j : b_extra) out.schema.push_back(b.schema[j]);
  // Hash b by its shared columns.
  std::map<std::vector<int>, std::vector<int>> index;
  for (size_t row = 0; row < b.tuples.size(); ++row) {
    std::vector<int> key;
    for (auto [ia, jb] : shared) key.push_back(b.tuples[row][jb]);
    index[key].push_back(static_cast<int>(row));
  }
  for (const std::vector<int>& ta : a.tuples) {
    std::vector<int> key;
    for (auto [ia, jb] : shared) key.push_back(ta[ia]);
    auto it = index.find(key);
    if (it == index.end()) continue;
    for (int row : it->second) {
      std::vector<int> tuple = ta;
      for (int j : b_extra) tuple.push_back(b.tuples[row][j]);
      out.tuples.push_back(std::move(tuple));
    }
  }
  return out;
}

}  // namespace

std::vector<std::vector<int>> EvaluatePe(const PeFormula& formula,
                                         const DataInstance& data) {
  const std::vector<int>& adom = data.individuals();
  std::function<Relation(int)> eval = [&](int n) -> Relation {
    const PeFormula::Node& node = formula.node(n);
    Relation rel;
    switch (node.kind) {
      case PeFormula::Kind::kConceptAtom:
        rel.schema = {node.vars[0]};
        for (int a : data.ConceptMembers(node.symbol)) rel.tuples.push_back({a});
        return rel;
      case PeFormula::Kind::kRoleAtom:
        if (node.vars[0] == node.vars[1]) {
          rel.schema = {node.vars[0]};
          for (auto [a, b] : data.RolePairs(node.symbol)) {
            if (a == b) rel.tuples.push_back({a});
          }
        } else {
          rel.schema = {node.vars[0], node.vars[1]};
          for (auto [a, b] : data.RolePairs(node.symbol)) {
            rel.tuples.push_back({a, b});
          }
        }
        return rel;
      case PeFormula::Kind::kEquality:
        if (node.vars[0] == node.vars[1]) {
          rel.schema = {node.vars[0]};
          for (int a : adom) rel.tuples.push_back({a});
        } else {
          rel.schema = {node.vars[0], node.vars[1]};
          for (int a : adom) rel.tuples.push_back({a, a});
        }
        return rel;
      case PeFormula::Kind::kAnd: {
        rel.schema = {};
        rel.tuples = {{}};
        for (int c : node.children) rel = Join(rel, eval(c));
        return Project(rel, node.vars, adom);
      }
      case PeFormula::Kind::kOr: {
        std::set<std::vector<int>> seen;
        rel.schema = node.vars;
        for (int c : node.children) {
          Relation child = Project(eval(c), node.vars, adom);
          for (std::vector<int>& t : child.tuples) {
            if (seen.insert(t).second) rel.tuples.push_back(std::move(t));
          }
        }
        return rel;
      }
    }
    return rel;
  };
  if (formula.root() < 0) return {};
  Relation result =
      Project(eval(formula.root()), formula.answer_vars(), adom);
  std::sort(result.tuples.begin(), result.tuples.end());
  return result.tuples;
}

}  // namespace owlqr
