#ifndef OWLQR_NDL_TRANSFORMS_H_
#define OWLQR_NDL_TRANSFORMS_H_

#include "ndl/program.h"
#include "ontology/saturation.h"
#include "ontology/tbox.h"

namespace owlqr {

// Removes clauses whose body references an IDB predicate without defining
// clauses (to fixpoint), then clauses whose head predicate is unreachable
// from the goal.  Returns the number of removed clauses.
int PruneProgram(NdlProgram* program);

// Makes every clause safe by appending TOP(v) (active-domain) atoms for head
// variables that do not occur in the body.  Returns the number of atoms
// added.
int EnsureSafety(NdlProgram* program);

// The paper's * transformation (Section 2): converts an NDL-rewriting over
// complete data instances into one over arbitrary data instances by replacing
// every concept/role EDB predicate S with an IDB predicate S* defined from
// the entailment closure:
//   A*(x)  <- tau(x)      if T |= tau(x) -> A(x)
//   P*(x,y) <- rho(x,y)   if T |= rho(x,y) -> P(x,y)
//   P*(x,x) <- TOP(x)     if T |= P(x,x)
NdlProgram StarTransform(const NdlProgram& program, const TBox& tbox,
                         const Saturation& saturation);

// Lemma 3: the linearity-preserving variant of the * transformation.  For
// each clause Q(z) <- I & EQ & E_1 & ... & E_n (I the at-most-one IDB atom,
// EQ the equality atoms), produces a chain of clauses that absorbs one EDB
// atom at a time, each replaced by one of its entailment-closure variants.
// The width grows by at most 1.  Requires program.IsLinear().
NdlProgram LinearStarTransform(const NdlProgram& program, const TBox& tbox,
                               const Saturation& saturation);

// The Tw* optimisation (Appendix D.4): repeatedly inlines IDB predicates that
// are defined by a single clause and occur at most `max_occurrences` times in
// clause bodies.  Returns the number of predicates inlined.
int InlineSingleUsePredicates(NdlProgram* program, int max_occurrences = 2);

}  // namespace owlqr

#endif  // OWLQR_NDL_TRANSFORMS_H_
