#include "ndl/transforms.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/logging.h"
#include "util/metrics.h"

namespace owlqr {

int PruneProgram(NdlProgram* program) {
  OWLQR_NAMED_SPAN(span, "transform/prune");
  int removed = 0;
  bool changed = true;
  std::vector<NdlClause> clauses = program->clauses();
  while (changed) {
    changed = false;
    std::set<int> defined;
    for (const NdlClause& c : clauses) defined.insert(c.head.predicate);
    std::vector<NdlClause> kept;
    for (NdlClause& c : clauses) {
      bool ok = true;
      for (const NdlAtom& atom : c.body) {
        if (program->IsIdb(atom.predicate) &&
            defined.count(atom.predicate) == 0) {
          ok = false;
          break;
        }
      }
      if (ok) {
        kept.push_back(std::move(c));
      } else {
        ++removed;
        changed = true;
      }
    }
    clauses = std::move(kept);
  }
  // Reachability from the goal.
  if (program->goal() >= 0) {
    std::set<int> reachable = {program->goal()};
    bool grew = true;
    while (grew) {
      grew = false;
      for (const NdlClause& c : clauses) {
        if (reachable.count(c.head.predicate) == 0) continue;
        for (const NdlAtom& atom : c.body) {
          if (program->IsIdb(atom.predicate) &&
              reachable.insert(atom.predicate).second) {
            grew = true;
          }
        }
      }
    }
    std::vector<NdlClause> kept;
    for (NdlClause& c : clauses) {
      if (reachable.count(c.head.predicate) > 0) {
        kept.push_back(std::move(c));
      } else {
        ++removed;
      }
    }
    clauses = std::move(kept);
  }
  program->ReplaceClauses(std::move(clauses));
  span.Attr("removed", removed);
  return removed;
}

int EnsureSafety(NdlProgram* program) {
  OWLQR_NAMED_SPAN(span, "transform/safety");
  int added = 0;
  std::vector<NdlClause> clauses = program->clauses();
  int adom = -1;
  for (NdlClause& c : clauses) {
    std::set<int> body_vars;
    for (const NdlAtom& atom : c.body) {
      for (const Term& t : atom.args) {
        if (!t.is_constant) body_vars.insert(t.value);
      }
    }
    for (const Term& t : c.head.args) {
      if (t.is_constant || body_vars.count(t.value) > 0) continue;
      if (adom < 0) adom = program->AdomPredicate();
      c.body.push_back({adom, {t}});
      body_vars.insert(t.value);
      ++added;
    }
  }
  program->ReplaceClauses(std::move(clauses));
  span.Attr("added", added);
  return added;
}

namespace {

// Atom rho(x, y) over the raw EDB predicates of `out`.
NdlAtom RoleEdbAtom(NdlProgram* out, RoleId rho, Term x, Term y) {
  int pred = out->AddRolePredicate(PredicateOf(rho));
  if (IsInverse(rho)) std::swap(x, y);
  return {pred, {x, y}};
}

// Copies predicate `p` of `in` into `out`, starring concept/role EDBs.
// Returns the predicate id in `out`.
int MapPredicateStarred(const NdlProgram& in, NdlProgram* out, int p) {
  const PredicateInfo& info = in.predicate(p);
  switch (info.kind) {
    case PredicateKind::kIdb: {
      int q = out->AddIdbPredicate(info.name, info.arity);
      out->mutable_predicate(q).parameter_positions = info.parameter_positions;
      return q;
    }
    case PredicateKind::kConceptEdb:
      return out->AddIdbPredicate(info.name + "*", 1);
    case PredicateKind::kRoleEdb:
      return out->AddIdbPredicate(info.name + "*", 2);
    case PredicateKind::kTableEdb:
      return out->AddTablePredicate(info.name, info.arity, info.external_id);
    case PredicateKind::kEquality:
      return out->EqualityPredicate();
    case PredicateKind::kAdom:
      return out->AdomPredicate();
  }
  return -1;
}

}  // namespace

NdlProgram StarTransform(const NdlProgram& program, const TBox& tbox,
                         const Saturation& saturation) {
  OWLQR_NAMED_SPAN(span, "transform/star");
  NdlProgram out(program.vocabulary());
  std::vector<int> pred_map(program.num_predicates());
  for (int p = 0; p < program.num_predicates(); ++p) {
    pred_map[p] = MapPredicateStarred(program, &out, p);
  }
  for (const NdlClause& clause : program.clauses()) {
    NdlClause c;
    c.head = {pred_map[clause.head.predicate], clause.head.args};
    for (const NdlAtom& atom : clause.body) {
      c.body.push_back({pred_map[atom.predicate], atom.args});
    }
    out.AddClause(std::move(c));
  }
  if (program.goal() >= 0) out.SetGoal(pred_map[program.goal()]);

  // Defining clauses for the starred predicates.
  Term x = Term::Var(0), y = Term::Var(1);
  for (int p = 0; p < program.num_predicates(); ++p) {
    const PredicateInfo& info = program.predicate(p);
    if (info.kind == PredicateKind::kConceptEdb) {
      int star = pred_map[p];
      BasicConcept target = BasicConcept::Atomic(info.external_id);
      // A*(x) <- B(x), including the trivial B = A.
      {
        NdlClause c;
        c.head = {star, {x}};
        c.body.push_back({out.AddConceptPredicate(info.external_id), {x}});
        out.AddClause(std::move(c));
      }
      for (int b = 0; b < saturation.num_snapshot_concepts(); ++b) {
        if (b == info.external_id) continue;
        if (!saturation.SubConcept(BasicConcept::Atomic(b), target)) continue;
        NdlClause c;
        c.head = {star, {x}};
        c.body.push_back({out.AddConceptPredicate(b), {x}});
        out.AddClause(std::move(c));
      }
      // A*(x) <- rho(x, y) whenever exists rho <= A.
      for (RoleId rho = 0; rho < saturation.num_snapshot_roles(); ++rho) {
        if (!saturation.SubConcept(BasicConcept::Exists(rho), target)) continue;
        NdlClause c;
        c.head = {star, {x}};
        c.body.push_back(RoleEdbAtom(&out, rho, x, y));
        out.AddClause(std::move(c));
      }
      // A*(x) <- TOP(x) whenever TOP <= A.
      if (saturation.SubConcept(BasicConcept::Top(), target)) {
        NdlClause c;
        c.head = {star, {x}};
        c.body.push_back({out.AdomPredicate(), {x}});
        out.AddClause(std::move(c));
      }
    } else if (info.kind == PredicateKind::kRoleEdb) {
      int star = pred_map[p];
      RoleId target = RoleOf(info.external_id);
      for (RoleId rho = 0; rho < saturation.num_snapshot_roles(); ++rho) {
        if (!saturation.SubRole(rho, target)) continue;
        NdlClause c;
        c.head = {star, {x, y}};
        c.body.push_back(RoleEdbAtom(&out, rho, x, y));
        out.AddClause(std::move(c));
      }
      if (static_cast<int>(target) >= saturation.num_snapshot_roles()) {
        // Role unknown to the ontology: only the trivial clause.
        NdlClause c;
        c.head = {star, {x, y}};
        c.body.push_back(RoleEdbAtom(&out, target, x, y));
        out.AddClause(std::move(c));
      }
      if (saturation.Reflexive(target)) {
        NdlClause c;
        c.head = {star, {x, x}};
        c.body.push_back({out.AdomPredicate(), {x}});
        out.AddClause(std::move(c));
      }
    }
  }
  (void)tbox;
  span.Attr("clauses", out.num_clauses());
  return out;
}

NdlProgram LinearStarTransform(const NdlProgram& program, const TBox& tbox,
                               const Saturation& saturation) {
  (void)tbox;
  OWLQR_CHECK_MSG(program.IsLinear(), "LinearStarTransform requires linearity");
  OWLQR_NAMED_SPAN(span, "transform/linear-star");
  NdlProgram out(program.vocabulary());
  // IDB predicates keep their names; EDB atoms are replaced inline by their
  // entailment-closure variants, so EDB predicates stay EDB.
  std::vector<int> pred_map(program.num_predicates(), -1);
  for (int p = 0; p < program.num_predicates(); ++p) {
    const PredicateInfo& info = program.predicate(p);
    switch (info.kind) {
      case PredicateKind::kIdb: {
        int q = out.AddIdbPredicate(info.name, info.arity);
        out.mutable_predicate(q).parameter_positions = info.parameter_positions;
        pred_map[p] = q;
        break;
      }
      case PredicateKind::kConceptEdb:
        pred_map[p] = out.AddConceptPredicate(info.external_id);
        break;
      case PredicateKind::kRoleEdb:
        pred_map[p] = out.AddRolePredicate(info.external_id);
        break;
      case PredicateKind::kTableEdb:
        pred_map[p] = out.AddTablePredicate(info.name, info.arity,
                                            info.external_id);
        break;
      case PredicateKind::kEquality:
        pred_map[p] = out.EqualityPredicate();
        break;
      case PredicateKind::kAdom:
        pred_map[p] = out.AdomPredicate();
        break;
    }
  }
  if (program.goal() >= 0) out.SetGoal(pred_map[program.goal()]);

  int chain_counter = 0;
  for (const NdlClause& clause : program.clauses()) {
    // Partition the body.
    const NdlAtom* idb = nullptr;
    std::vector<NdlAtom> eq_or_adom;
    std::vector<NdlAtom> edb;
    for (const NdlAtom& atom : clause.body) {
      PredicateKind kind = program.predicate(atom.predicate).kind;
      if (kind == PredicateKind::kIdb) {
        idb = &atom;
      } else if (kind == PredicateKind::kEquality ||
                 kind == PredicateKind::kAdom) {
        eq_or_adom.push_back(atom);
      } else {
        edb.push_back(atom);
      }
    }

    // Fresh variables must not collide with any existing variable id.
    int next_var = 0;
    for (const Term& t : clause.head.args) {
      if (!t.is_constant) next_var = std::max(next_var, t.value + 1);
    }
    for (const NdlAtom& atom : clause.body) {
      for (const Term& t : atom.args) {
        if (!t.is_constant) next_var = std::max(next_var, t.value + 1);
      }
    }

    // Variables accumulated so far along the chain.
    std::set<int> carried;
    NdlAtom previous;  // Q_{i-1}(z_{i-1}); empty predicate if none yet.
    previous.predicate = -1;
    if (idb != nullptr) {
      previous = {pred_map[idb->predicate], idb->args};
      for (const Term& t : idb->args) {
        if (!t.is_constant) carried.insert(t.value);
      }
    }

    std::string base =
        "_lin" + std::to_string(chain_counter++) + "_" +
        program.predicate(clause.head.predicate).name;
    for (size_t i = 0; i < edb.size(); ++i) {
      const NdlAtom& e = edb[i];
      // New carried set: old + this atom's (original) variables.
      for (const Term& t : e.args) {
        if (!t.is_constant) carried.insert(t.value);
      }
      std::vector<Term> z;
      for (int v : carried) z.push_back(Term::Var(v));
      int qi = out.AddIdbPredicate(base + "_" + std::to_string(i),
                                   static_cast<int>(z.size()));
      const PredicateInfo& einfo = program.predicate(e.predicate);
      auto emit = [&](NdlAtom variant) {
        NdlClause c;
        c.head = {qi, z};
        if (previous.predicate >= 0) c.body.push_back(previous);
        c.body.push_back(std::move(variant));
        out.AddClause(std::move(c));
      };
      if (einfo.kind == PredicateKind::kConceptEdb) {
        BasicConcept target = BasicConcept::Atomic(einfo.external_id);
        emit({out.AddConceptPredicate(einfo.external_id), e.args});
        for (int b = 0; b < saturation.num_snapshot_concepts(); ++b) {
          if (b == einfo.external_id) continue;
          if (!saturation.SubConcept(BasicConcept::Atomic(b), target)) continue;
          emit({out.AddConceptPredicate(b), e.args});
        }
        for (RoleId rho = 0; rho < saturation.num_snapshot_roles(); ++rho) {
          // T |= exists y rho(y, x) -> A(x), variant rho(y_i, z).
          if (!saturation.SubConcept(BasicConcept::Exists(rho), target)) {
            continue;
          }
          Term fresh = Term::Var(next_var++);
          emit(RoleEdbAtom(&out, rho, e.args[0], fresh));
        }
        if (saturation.SubConcept(BasicConcept::Top(), target)) {
          emit({out.AdomPredicate(), e.args});
        }
      } else {  // Role EDB atom.
        RoleId target = RoleOf(einfo.external_id);
        bool trivial_emitted = false;
        for (RoleId rho = 0; rho < saturation.num_snapshot_roles(); ++rho) {
          if (!saturation.SubRole(rho, target)) continue;
          if (rho == target) trivial_emitted = true;
          emit(RoleEdbAtom(&out, rho, e.args[0], e.args[1]));
        }
        if (!trivial_emitted) {
          emit(RoleEdbAtom(&out, target, e.args[0], e.args[1]));
        }
        if (saturation.Reflexive(target)) {
          NdlClause c;
          c.head = {qi, z};
          if (previous.predicate >= 0) c.body.push_back(previous);
          c.body.push_back({out.EqualityPredicate(), {e.args[0], e.args[1]}});
          c.body.push_back({out.AdomPredicate(), {e.args[0]}});
          out.AddClause(std::move(c));
        }
      }
      previous = {qi, z};
    }

    // Final clause: Q(z) <- Q_n(z_n) & EQ (& adom atoms).
    NdlClause final_clause;
    final_clause.head = {pred_map[clause.head.predicate], clause.head.args};
    if (previous.predicate >= 0) final_clause.body.push_back(previous);
    for (NdlAtom& atom : eq_or_adom) {
      final_clause.body.push_back({pred_map[atom.predicate], atom.args});
    }
    out.AddClause(std::move(final_clause));
  }
  EnsureSafety(&out);
  span.Attr("clauses", out.num_clauses());
  return out;
}

namespace {

// Replaces `target->body[atom_index]` (an atom of `defining.head.predicate`)
// by the (renamed) body of `defining`, adding equality atoms for repeated or
// constant head arguments.
void UnfoldAtom(const NdlClause& defining, NdlClause* target,
                size_t atom_index, int equality_pred) {
  NdlAtom occurrence = target->body[atom_index];
  int offset = 0;
  for (const Term& t : occurrence.args) {
    if (!t.is_constant) offset = std::max(offset, t.value + 1);
  }
  for (const Term& t : target->head.args) {
    if (!t.is_constant) offset = std::max(offset, t.value + 1);
  }
  for (const NdlAtom& atom : target->body) {
    for (const Term& t : atom.args) {
      if (!t.is_constant) offset = std::max(offset, t.value + 1);
    }
  }
  // Substitution for the defining clause's variables.
  std::map<int, Term> subst;
  std::vector<NdlAtom> extra_equalities;
  for (size_t i = 0; i < defining.head.args.size(); ++i) {
    const Term& h = defining.head.args[i];
    const Term& t = occurrence.args[i];
    if (h.is_constant) {
      extra_equalities.push_back({equality_pred, {h, t}});
      continue;
    }
    auto it = subst.find(h.value);
    if (it == subst.end()) {
      subst.emplace(h.value, t);
    } else if (!(it->second == t)) {
      extra_equalities.push_back({equality_pred, {it->second, t}});
    }
  }
  auto map_term = [&subst, &offset](const Term& t) -> Term {
    if (t.is_constant) return t;
    auto it = subst.find(t.value);
    if (it != subst.end()) return it->second;
    Term fresh = Term::Var(offset++);
    subst.emplace(t.value, fresh);
    return fresh;
  };
  std::vector<NdlAtom> new_body;
  for (size_t i = 0; i < target->body.size(); ++i) {
    if (i == atom_index) {
      for (const NdlAtom& atom : defining.body) {
        NdlAtom mapped;
        mapped.predicate = atom.predicate;
        for (const Term& t : atom.args) mapped.args.push_back(map_term(t));
        new_body.push_back(std::move(mapped));
      }
      for (const NdlAtom& eq : extra_equalities) new_body.push_back(eq);
    } else {
      new_body.push_back(target->body[i]);
    }
  }
  target->body = std::move(new_body);
}

}  // namespace

int InlineSingleUsePredicates(NdlProgram* program, int max_occurrences) {
  OWLQR_NAMED_SPAN(span, "transform/inline");
  int inlined = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<NdlClause> clauses = program->clauses();
    std::map<int, int> def_count;
    std::map<int, int> use_count;
    for (const NdlClause& c : clauses) {
      ++def_count[c.head.predicate];
      for (const NdlAtom& atom : c.body) {
        if (program->IsIdb(atom.predicate)) ++use_count[atom.predicate];
      }
    }
    for (const auto& [pred, defs] : def_count) {
      if (pred == program->goal() || defs != 1) continue;
      int uses = use_count.count(pred) > 0 ? use_count[pred] : 0;
      if (uses == 0 || uses > max_occurrences) continue;
      // Find the defining clause.
      const NdlClause* defining = nullptr;
      for (const NdlClause& c : clauses) {
        if (c.head.predicate == pred) defining = &c;
      }
      NdlClause def_copy = *defining;
      std::vector<NdlClause> next;
      for (NdlClause& c : clauses) {
        if (c.head.predicate == pred) continue;  // Drop the definition.
        // Inline every occurrence (re-scanning after each unfold).
        bool again = true;
        while (again) {
          again = false;
          for (size_t i = 0; i < c.body.size(); ++i) {
            if (c.body[i].predicate == pred) {
              UnfoldAtom(def_copy, &c, i, program->EqualityPredicate());
              again = true;
              break;
            }
          }
        }
        next.push_back(std::move(c));
      }
      program->ReplaceClauses(std::move(next));
      ++inlined;
      changed = true;
      break;  // Recompute counts from scratch.
    }
  }
  span.Attr("inlined", inlined);
  return inlined;
}

}  // namespace owlqr
