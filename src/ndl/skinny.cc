#include "ndl/skinny.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <set>

#include "ndl/transforms.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace owlqr {

std::vector<long> ComputeWeightFunction(const NdlProgram& program) {
  std::vector<long> nu(program.num_predicates(), 0);
  for (int p : program.TopologicalOrder()) {
    long best = 1;
    for (int ci : program.ClausesFor(p)) {
      long sum = 0;
      for (const NdlAtom& atom : program.clause(ci).body) {
        sum += nu[atom.predicate];
        sum = std::min(sum, kWeightCap);
      }
      best = std::max(best, sum);
    }
    nu[p] = best;
  }
  return nu;
}

int SkinnyDepth(const NdlProgram& program) {
  std::vector<long> nu = ComputeWeightFunction(program);
  long goal_weight = program.goal() >= 0 ? std::max(1L, nu[program.goal()]) : 1;
  int e_pi = std::max(1, program.MaxEdbAtomsPerClause());
  double sd = 2.0 * program.Depth() +
              std::log2(static_cast<double>(goal_weight)) +
              std::log2(static_cast<double>(e_pi));
  return static_cast<int>(std::ceil(sd));
}

namespace {

// Variables that must be exposed by an intermediate predicate covering
// `covered` (atom indices of `body`): variables shared with the rest of the
// clause or with the head.
std::vector<Term> NeededVars(const NdlClause& clause,
                             const std::vector<int>& covered) {
  std::set<int> inside;
  for (int i : covered) {
    for (const Term& t : clause.body[i].args) {
      if (!t.is_constant) inside.insert(t.value);
    }
  }
  std::set<int> outside;
  for (const Term& t : clause.head.args) {
    if (!t.is_constant) outside.insert(t.value);
  }
  std::set<int> covered_set(covered.begin(), covered.end());
  for (size_t i = 0; i < clause.body.size(); ++i) {
    if (covered_set.count(static_cast<int>(i)) > 0) continue;
    for (const Term& t : clause.body[i].args) {
      if (!t.is_constant) outside.insert(t.value);
    }
  }
  std::vector<Term> out;
  for (int v : inside) {
    if (outside.count(v) > 0) out.push_back(Term::Var(v));
  }
  return out;
}

struct TreeShapeNode {
  // Leaf: body atom index (>= 0); internal: -1 with two children.
  int atom = -1;
  int left = -1;
  int right = -1;
};

// Collects the atom indices under node `n`.
void CollectAtoms(const std::vector<TreeShapeNode>& nodes, int n,
                  std::vector<int>* out) {
  if (nodes[n].atom >= 0) {
    out->push_back(nodes[n].atom);
    return;
  }
  CollectAtoms(nodes, nodes[n].left, out);
  CollectAtoms(nodes, nodes[n].right, out);
}

// Emits binarised clauses for the subtree rooted at `n`; returns the atom
// standing for that subtree.
NdlAtom EmitSubtree(NdlProgram* out, const NdlClause& clause,
                    const std::vector<TreeShapeNode>& nodes, int n,
                    const std::string& base, int* counter) {
  if (nodes[n].atom >= 0) return clause.body[nodes[n].atom];
  NdlAtom left =
      EmitSubtree(out, clause, nodes, nodes[n].left, base, counter);
  NdlAtom right =
      EmitSubtree(out, clause, nodes, nodes[n].right, base, counter);
  std::vector<int> covered;
  CollectAtoms(nodes, n, &covered);
  std::vector<Term> args = NeededVars(clause, covered);
  int pred = out->AddIdbPredicate(base + "_" + std::to_string((*counter)++),
                                  static_cast<int>(args.size()));
  NdlClause c;
  c.head = {pred, args};
  c.body.push_back(std::move(left));
  c.body.push_back(std::move(right));
  out->AddClause(std::move(c));
  return {pred, args};
}

// Balanced binary tree over `atoms` (indices into clause body).
int BuildBalanced(const std::vector<int>& atoms, size_t lo, size_t hi,
                  std::vector<TreeShapeNode>* nodes) {
  if (hi - lo == 1) {
    nodes->push_back({atoms[lo], -1, -1});
    return static_cast<int>(nodes->size()) - 1;
  }
  size_t mid = lo + (hi - lo) / 2;
  int left = BuildBalanced(atoms, lo, mid, nodes);
  int right = BuildBalanced(atoms, mid, hi, nodes);
  nodes->push_back({-1, left, right});
  return static_cast<int>(nodes->size()) - 1;
}

// Huffman tree over `atoms` with the given weights (higher weight = closer
// to the root).
int BuildHuffman(const std::vector<int>& atoms,
                 const std::vector<long>& weights,
                 std::vector<TreeShapeNode>* nodes) {
  using Entry = std::pair<long, int>;  // (weight, node index).
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (size_t i = 0; i < atoms.size(); ++i) {
    nodes->push_back({atoms[i], -1, -1});
    heap.push({std::max(1L, weights[i]),
               static_cast<int>(nodes->size()) - 1});
  }
  while (heap.size() > 1) {
    auto [w1, n1] = heap.top();
    heap.pop();
    auto [w2, n2] = heap.top();
    heap.pop();
    nodes->push_back({-1, n1, n2});
    heap.push({std::min(w1 + w2, kWeightCap),
               static_cast<int>(nodes->size()) - 1});
  }
  return heap.top().second;
}

}  // namespace

NdlProgram SkinnyTransform(const NdlProgram& program) {
  OWLQR_NAMED_SPAN(span, "transform/skinny");
  std::vector<long> nu = ComputeWeightFunction(program);
  NdlProgram out(program.vocabulary());
  // Copy the predicate table (ids must survive, clauses reference them).
  std::vector<int> pred_map(program.num_predicates());
  for (int p = 0; p < program.num_predicates(); ++p) {
    const PredicateInfo& info = program.predicate(p);
    switch (info.kind) {
      case PredicateKind::kIdb: {
        int q = out.AddIdbPredicate(info.name, info.arity);
        out.mutable_predicate(q).parameter_positions = info.parameter_positions;
        pred_map[p] = q;
        break;
      }
      case PredicateKind::kConceptEdb:
        pred_map[p] = out.AddConceptPredicate(info.external_id);
        break;
      case PredicateKind::kRoleEdb:
        pred_map[p] = out.AddRolePredicate(info.external_id);
        break;
      case PredicateKind::kTableEdb:
        pred_map[p] = out.AddTablePredicate(info.name, info.arity,
                                            info.external_id);
        break;
      case PredicateKind::kEquality:
        pred_map[p] = out.EqualityPredicate();
        break;
      case PredicateKind::kAdom:
        pred_map[p] = out.AdomPredicate();
        break;
    }
  }
  if (program.goal() >= 0) out.SetGoal(pred_map[program.goal()]);

  int clause_counter = 0;
  for (const NdlClause& original : program.clauses()) {
    // Remap predicates first.
    NdlClause clause;
    clause.head = {pred_map[original.head.predicate], original.head.args};
    for (const NdlAtom& atom : original.body) {
      clause.body.push_back({pred_map[atom.predicate], atom.args});
    }
    if (clause.body.size() <= 2) {
      out.AddClause(std::move(clause));
      ++clause_counter;
      continue;
    }
    std::string base = "_sk" + std::to_string(clause_counter++);
    // Partition into EDB and IDB atom indices.
    std::vector<int> edb_atoms;
    std::vector<int> idb_atoms;
    std::vector<long> idb_weights;
    for (size_t i = 0; i < clause.body.size(); ++i) {
      if (out.IsIdb(clause.body[i].predicate)) {
        idb_atoms.push_back(static_cast<int>(i));
        // nu in terms of the original program's predicate ids.
        idb_weights.push_back(nu[original.body[i].predicate]);
      } else {
        edb_atoms.push_back(static_cast<int>(i));
      }
    }
    std::vector<NdlAtom> top_level;
    if (!edb_atoms.empty()) {
      if (edb_atoms.size() == 1) {
        top_level.push_back(clause.body[edb_atoms[0]]);
      } else {
        std::vector<TreeShapeNode> nodes;
        int root = BuildBalanced(edb_atoms, 0, edb_atoms.size(), &nodes);
        int counter = 0;
        top_level.push_back(
            EmitSubtree(&out, clause, nodes, root, base + "E", &counter));
      }
    }
    if (!idb_atoms.empty()) {
      if (idb_atoms.size() == 1) {
        top_level.push_back(clause.body[idb_atoms[0]]);
      } else {
        std::vector<TreeShapeNode> nodes;
        int root = BuildHuffman(idb_atoms, idb_weights, &nodes);
        int counter = 0;
        top_level.push_back(
            EmitSubtree(&out, clause, nodes, root, base + "I", &counter));
      }
    }
    NdlClause final_clause;
    final_clause.head = clause.head;
    final_clause.body = std::move(top_level);
    out.AddClause(std::move(final_clause));
  }
  EnsureSafety(&out);
  span.Attr("clauses", out.num_clauses());
  return out;
}

}  // namespace owlqr
