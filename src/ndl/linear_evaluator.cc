#include "ndl/linear_evaluator.h"

#include <functional>
#include <map>
#include <queue>
#include <set>

#include "util/logging.h"
#include "util/metrics.h"

namespace owlqr {

LinearReachabilityEvaluator::LinearReachabilityEvaluator(
    const NdlProgram& program, const DataInstance& data)
    : program_(program), data_(data) {
  OWLQR_CHECK_MSG(program.IsLinear(),
                  "LinearReachabilityEvaluator requires a linear program");
  OWLQR_CHECK(program.goal() >= 0);
}

namespace {

using GroundAtom = std::pair<int, std::vector<int>>;

// Propagates the goal's parameter positions through the program: for each
// predicate, which argument positions hold which answer component (-1 for
// non-parameters).  Follows the ordered-NDL conditions (Section 3.1).
std::map<int, std::vector<int>> ParameterAnswerIndex(
    const NdlProgram& program) {
  std::map<int, std::vector<int>> result;
  const PredicateInfo& goal = program.predicate(program.goal());
  std::vector<int> goal_map(goal.arity, -1);
  int next = 0;
  for (int i = 0; i < goal.arity; ++i) {
    if (i < static_cast<int>(goal.parameter_positions.size()) &&
        goal.parameter_positions[i]) {
      goal_map[i] = next++;
    }
  }
  result[program.goal()] = goal_map;
  // Repeatedly propagate head -> body until stable (the dependence graph is
  // acyclic, so |predicates| rounds suffice).
  int rounds = 0;
  for (int round = 0; round < program.num_predicates(); ++round) {
    ++rounds;
    bool changed = false;
    for (const NdlClause& clause : program.clauses()) {
      auto it = result.find(clause.head.predicate);
      if (it == result.end()) continue;
      // Map clause variables at parameter positions to answer components.
      std::map<int, int> var_answer;
      for (size_t i = 0; i < clause.head.args.size(); ++i) {
        if (it->second[i] >= 0 && !clause.head.args[i].is_constant) {
          var_answer[clause.head.args[i].value] = it->second[i];
        }
      }
      for (const NdlAtom& atom : clause.body) {
        if (!program.IsIdb(atom.predicate)) continue;
        const PredicateInfo& info = program.predicate(atom.predicate);
        auto [entry, inserted] = result.try_emplace(
            atom.predicate, std::vector<int>(info.arity, -1));
        if (inserted) changed = true;  // Newly reachable predicate.
        std::vector<int>& map = entry->second;
        for (size_t i = 0; i < atom.args.size(); ++i) {
          if (i < info.parameter_positions.size() &&
              info.parameter_positions[i] && !atom.args[i].is_constant) {
            auto va = var_answer.find(atom.args[i].value);
            if (va != var_answer.end() && map[i] != va->second) {
              map[i] = va->second;
              changed = true;
            }
          }
        }
      }
    }
    if (!changed) break;
  }
  // Per-pass count of the parameter-propagation fixpoint.
  OWLQR_RECORD("linear-eval/param_rounds", static_cast<double>(rounds));
  return result;
}

}  // namespace

bool LinearReachabilityEvaluator::Decide(const std::vector<int>& answer) {
  OWLQR_NAMED_SPAN(span, "linear-eval/decide");
  const PredicateInfo& goal = program_.predicate(program_.goal());
  OWLQR_CHECK(static_cast<int>(answer.size()) ==
              static_cast<int>(goal.arity));
  std::map<int, std::vector<int>> param_maps = ParameterAnswerIndex(program_);

  // The grounding graph: vertices are ground IDB atoms; edges[v] lists the
  // heads derivable from v; sources are heads of IDB-free clauses.
  std::map<GroundAtom, std::vector<GroundAtom>> edges;
  std::vector<GroundAtom> sources;
  num_vertices_ = 0;
  num_edges_ = 0;

  const std::vector<int>& adom = data_.individuals();
  for (const NdlClause& clause : program_.clauses()) {
    // Bind parameter variables of this clause from the head's answer map.
    auto pm = param_maps.find(clause.head.predicate);
    if (pm == param_maps.end()) continue;  // Unreachable from the goal.
    std::map<int, int> binding;            // Clause var -> constant.
    bool consistent = true;
    for (size_t i = 0; i < clause.head.args.size(); ++i) {
      if (pm->second[i] < 0) continue;
      int value = answer[pm->second[i]];
      const Term& t = clause.head.args[i];
      if (t.is_constant) {
        consistent = consistent && t.value == value;
      } else {
        auto [it, inserted] = binding.emplace(t.value, value);
        consistent = consistent && it->second == value;
      }
    }
    if (!consistent) continue;

    // Split the body.
    const NdlAtom* idb = nullptr;
    std::vector<const NdlAtom*> side;
    for (const NdlAtom& atom : clause.body) {
      if (program_.IsIdb(atom.predicate)) {
        idb = &atom;
      } else {
        side.push_back(&atom);
      }
    }
    // All variables that must be ground: head vars + IDB atom vars + side
    // condition vars.
    std::set<int> vars;
    auto collect = [&vars](const NdlAtom& atom) {
      for (const Term& t : atom.args) {
        if (!t.is_constant) vars.insert(t.value);
      }
    };
    collect(clause.head);
    for (const NdlAtom* atom : side) collect(*atom);
    if (idb != nullptr) collect(*idb);
    std::vector<int> var_list(vars.begin(), vars.end());

    // Enumerate groundings by backtracking over the variables, checking the
    // side conditions once fully ground (the width bound keeps this
    // polynomial; practical sizes stay small).
    std::function<void(size_t, std::map<int, int>&)> enumerate =
        [&](size_t next, std::map<int, int>& b) {
          if (next == var_list.size()) {
            auto value = [&](const Term& t) {
              return t.is_constant ? t.value : b.at(t.value);
            };
            for (const NdlAtom* atom : side) {
              const PredicateInfo& info = program_.predicate(atom->predicate);
              switch (info.kind) {
                case PredicateKind::kConceptEdb:
                  if (!data_.HasConceptAssertion(info.external_id,
                                                 value(atom->args[0]))) {
                    return;
                  }
                  break;
                case PredicateKind::kRoleEdb:
                  if (!data_.HasRoleAssertion(info.external_id,
                                              value(atom->args[0]),
                                              value(atom->args[1]))) {
                    return;
                  }
                  break;
                case PredicateKind::kEquality:
                  if (value(atom->args[0]) != value(atom->args[1])) return;
                  break;
                case PredicateKind::kAdom:
                  break;  // All constants are in the active domain.
                default:
                  OWLQR_CHECK(false);
              }
            }
            GroundAtom head{clause.head.predicate, {}};
            for (const Term& t : clause.head.args) {
              head.second.push_back(value(t));
            }
            if (idb == nullptr) {
              sources.push_back(head);
            } else {
              GroundAtom from{idb->predicate, {}};
              for (const Term& t : idb->args) {
                from.second.push_back(value(t));
              }
              edges[from].push_back(head);
              ++num_edges_;
            }
            return;
          }
          int v = var_list[next];
          if (b.count(v) > 0) {
            enumerate(next + 1, b);
            return;
          }
          for (int c : adom) {
            b[v] = c;
            enumerate(next + 1, b);
            b.erase(v);
          }
        };
    enumerate(0, binding);
  }

  // BFS from the sources.
  GroundAtom target{program_.goal(), answer};
  std::set<GroundAtom> seen;
  std::queue<GroundAtom> queue;
  for (const GroundAtom& s : sources) {
    if (seen.insert(s).second) queue.push(s);
  }
  long bfs_pops = 0;
  while (!queue.empty()) {
    GroundAtom v = queue.front();
    queue.pop();
    ++bfs_pops;
    if (v == target) {
      num_vertices_ = static_cast<long>(seen.size());
      span.Attr("vertices", num_vertices_);
      span.Attr("edges", num_edges_);
      span.Attr("bfs_pops", bfs_pops);
      span.Attr("reached", 1);
      return true;
    }
    auto it = edges.find(v);
    if (it == edges.end()) continue;
    for (const GroundAtom& w : it->second) {
      if (seen.insert(w).second) queue.push(w);
    }
  }
  num_vertices_ = static_cast<long>(seen.size());
  span.Attr("vertices", num_vertices_);
  span.Attr("edges", num_edges_);
  span.Attr("bfs_pops", bfs_pops);
  span.Attr("reached", 0);
  return false;
}

}  // namespace owlqr
