#ifndef OWLQR_NDL_EVALUATOR_H_
#define OWLQR_NDL_EVALUATOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "data/data_instance.h"
#include "data/table_store.h"
#include "ndl/program.h"

namespace owlqr {

struct EvaluationStats {
  // Total tuples materialised across all evaluated IDB predicates (the
  // "generated tuples" column of the paper's Tables 3-5).
  long generated_tuples = 0;
  long goal_tuples = 0;
  int predicates_evaluated = 0;
  // True if evaluation stopped early because a limit was exhausted (the
  // bench harness's analogue of the paper's evaluation timeouts).
  bool aborted = false;
  // True iff the abort was caused by EvaluatorLimits::deadline_ms.
  bool deadline_exceeded = false;
  // EDB relations whose materialisation was cut short by the deadline; when
  // nonzero, `aborted` and `deadline_exceeded` are set too.
  int partial_edbs = 0;
  // Number of (predicate, bound-position mask) hash indexes built.
  long index_builds = 0;
  // Per-predicate materialised tuple counts, indexed by predicate id
  // (zero for EDB and unevaluated predicates).
  std::vector<long> predicate_tuples;
  // Parallel (DAG scheduler) path only: predicate tasks run by workers,
  // intra-clause morsel fan-outs, morsels executed, and the wall time of
  // the slowest single predicate task (the critical-path floor a perfectly
  // parallel schedule cannot beat).
  long scheduler_tasks = 0;
  long morsel_batches = 0;
  long morsels = 0;
  double slowest_task_ms = 0;
};

struct EvaluatorLimits {
  // Stop materialising once this many IDB tuples exist (<= 0: unlimited).
  long max_generated_tuples = 0;
  // Stop after this many join emissions, counting duplicates (<= 0:
  // unlimited).  Guards against clauses that churn on duplicate tuples
  // without growing any relation.
  long max_work = 0;
  // Wall-clock deadline from the start of Evaluate / EvaluateParallel, in
  // milliseconds (<= 0: unlimited).  The faithful stand-in for the paper's
  // 999 s evaluation timeout.
  long deadline_ms = 0;
  // Intra-clause (morsel) parallelism threshold for EvaluateParallel: when
  // the scheduler would otherwise leave workers idle and a clause's driver
  // atom scans more than this many rows, the scan is split into morsels of
  // this size and fanned out across workers (<= 0 disables splitting).
  long morsel_rows = 2048;
};

// Bottom-up evaluator for nonrecursive datalog over a data instance.
//
// IDB predicates are materialised in dependence order; each clause is
// evaluated with a backtracking join over its body using lazily built hash
// indexes per (predicate, bound-position mask).  Equality is a built-in over
// ind(A); TOP is the active domain.  The evaluator assumes (and checks) that
// the program is nonrecursive.
//
// Storage is a flat arena per predicate (one contiguous int vector with the
// predicate's arity as stride) with an open-addressing hash set for
// deduplication, so the hot insert path performs no per-tuple heap
// allocation.  Hash indexes live in per-predicate slots, each built at most
// once under a std::once_flag, so concurrent indexed lookups on different
// predicates never contend and lookups on the same predicate contend only
// until the index exists.
//
// Parallel evaluation (EvaluateParallel) is barrier-free: every IDB
// predicate the goal depends on becomes a task with an atomic
// remaining-dependency counter, workers pull ready tasks from a shared
// queue, and a predicate is enqueued the moment its last dependency
// finishes.  When ready tasks would leave workers idle, a clause whose
// driver atom scans more than EvaluatorLimits::morsel_rows rows is split
// into morsels evaluated concurrently into per-worker Rows shards and then
// merged (see DESIGN.md section 7).  The safety invariant is single writer
// per relation: every EDB relation (including table EDBs) and the active
// domain are materialised eagerly before workers start, each shard is
// written by exactly one worker, the task owner alone merges shards into
// the predicate's canonical Rows, and all other reads are of frozen
// dependency relations or of indexes built under a once-flag.
class Evaluator {
 public:
  Evaluator(const NdlProgram& program, const DataInstance& data,
            const EvaluatorLimits& limits = {});
  // With a source database for kTableEdb predicates (the mapping layer);
  // the active domain is then ind(data) united with the tables' cells.
  Evaluator(const NdlProgram& program, const DataInstance& data,
            const TableStore& tables, const EvaluatorLimits& limits = {});
  ~Evaluator();

  Evaluator(const Evaluator&) = delete;
  Evaluator& operator=(const Evaluator&) = delete;

  // Materialises everything the goal depends on and returns the goal
  // relation, sorted lexicographically.
  std::vector<std::vector<int>> Evaluate(EvaluationStats* stats = nullptr);

  // Like Evaluate, but runs the dependency-DAG scheduler with `num_threads`
  // worker threads (see the class comment).  num_threads <= 1 falls back to
  // the sequential path; larger counts are capped at the hardware
  // concurrency (floor 2), since extra CPU-bound workers only add
  // scheduling overhead.  Answers and counters do not depend on the worker
  // count.
  std::vector<std::vector<int>> EvaluateParallel(
      int num_threads, EvaluationStats* stats = nullptr);

  // Materialises (if needed) and returns one predicate's relation.
  std::vector<std::vector<int>> Relation(int predicate);

 private:
  // One predicate's extension: a flat row-major arena of `arity`-strided
  // cells plus an open-addressing dedup table (slot = row index + 1).
  struct Rows {
    int arity = 0;
    std::vector<int> cells;
    bool materialized = false;
    // True when a deadline abort stopped materialisation partway: the rows
    // present are valid, but the extension is incomplete.
    bool partial = false;

    size_t size() const { return num_rows_; }
    const int* row(size_t r) const {
      return cells.data() + r * static_cast<size_t>(arity);
    }
    // Inserts `tuple` (arity ints) if new; returns whether it was new.
    bool Insert(const int* tuple);
    // Hint that the relation will reach about `expected_rows` rows: sizes
    // the dedup table once instead of growing through the doubling cascade
    // (bounded, so a wildly selective join cannot over-allocate; a relation
    // that outgrows the hint just resumes doubling).
    void Reserve(size_t expected_rows);

    std::vector<std::vector<int>> ToTuples() const;
    // ToTuples() in lexicographic order, sorting row indices over the flat
    // arena and materialising the per-tuple vectors once (the sorted output
    // is byte-identical to sorting ToTuples(), without the intermediate
    // copy-then-shuffle of arity-sized heap vectors).
    std::vector<std::vector<int>> ToSortedTuples() const;

   private:
    // Dedup entry for arity <= 2 (every concept, role and rewriting-
    // produced predicate): the tuple packed beside the row id, so the
    // duplicate check reads one slot instead of chasing from the slot
    // table into the cells arena, and rehashing touches neither the arena
    // nor the hash function (the low hash bits ride in what would be
    // padding; they cover any table below 2^32 slots, and a larger one
    // merely clusters, it does not break the probe sequence).
    struct SmallSlot {
      uint64_t key = 0;
      uint32_t id = 0;      // Row index + 1; 0 = empty.
      uint32_t hash32 = 0;  // Low 32 bits of the tuple hash.
    };

    // Zero-initialised slot array allocated with calloc: for the table
    // sizes a Reserve hint creates, the allocator hands back lazily zeroed
    // pages, so sizing a big table does not pay an eager memset over slots
    // that may never be touched (a std::vector fill would).
    struct SlotBuffer {
      SlotBuffer() = default;
      explicit SlotBuffer(size_t n);
      SlotBuffer(SlotBuffer&& o) noexcept : data(o.data), size(o.size) {
        o.data = nullptr;
        o.size = 0;
      }
      SlotBuffer& operator=(SlotBuffer&& o) noexcept;
      ~SlotBuffer();

      SmallSlot& operator[](size_t i) { return data[i]; }
      const SmallSlot& operator[](size_t i) const { return data[i]; }

      SmallSlot* data = nullptr;
      size_t size = 0;
    };

    bool InsertSmall(const int* tuple);
    bool InsertWide(const int* tuple);
    void RehashSmall(size_t capacity);
    void GrowSmall();
    void GrowWide();

    size_t num_rows_ = 0;
    std::vector<uint32_t> slots_;     // Arity >= 3; power of two; 0 = empty.
    SlotBuffer small_;                // Arity 1-2; power-of-two sized.
  };

  // Hash index on the positions set in `mask` (bit i = position i bound):
  // key hash -> rows whose key matches (collisions compared by the caller).
  // Flat open-addressing table over power-of-two slots with the row ids of
  // each key contiguous in `ids` (CSR layout): a probe is one scan of the
  // flat `hashes` array plus a contiguous candidate range, with none of the
  // per-bucket pointer chasing of a node-based map.
  // Keys are matched by the low 32 hash bits only (0 remapped to 1 as the
  // empty marker) — sound because index consumers already treat a hash
  // match as a candidate and verify the key positions against the row.
  struct Index {
    size_t mask = 0;                // slots - 1.
    std::vector<uint32_t> hashes;   // 0 = empty slot.
    std::vector<uint32_t> starts;   // Slot -> first candidate in `ids`.
    std::vector<uint32_t> ends;     // Slot -> one past the last candidate.
    std::vector<uint32_t> ids;      // Row ids, grouped by key, row order.

    // Candidates for `h` as a [first, last) range (nullptrs when absent).
    std::pair<const uint32_t*, const uint32_t*> Find(size_t h) const {
      if (hashes.empty()) return {nullptr, nullptr};
      uint32_t want = static_cast<uint32_t>(h);
      if (want == 0) want = 1;
      size_t pos = want & mask;
      while (true) {
        uint32_t stored = hashes[pos];
        if (stored == want) {
          return {ids.data() + starts[pos], ids.data() + ends[pos]};
        }
        if (stored == 0) return {nullptr, nullptr};
        pos = (pos + 1) & mask;
      }
    }
  };

  struct IndexSlot {
    std::once_flag built;
    Index index;
  };

  struct PredicateState {
    Rows rows;
    std::once_flag edb_once;          // Guards EDB materialisation.
    std::mutex slot_mutex;            // Guards the shape of `slots`.
    std::unordered_map<unsigned, std::unique_ptr<IndexSlot>> slots;
  };

  // Per-atom join plan: the static bound-position mask, the resolved
  // relation, and the argument positions to bind or to check against the
  // current binding.  Immutable once built, so a plan can be shared
  // read-only across morsel workers; all run-time state lives in
  // JoinContext.
  //
  // Terms the inner loop reads are pre-compiled into codes so the per-row
  // work never touches a Term again: code >= 0 names a binding slot,
  // code < 0 encodes the constant -(code + 1).
  struct AtomStep {
    const NdlAtom* atom = nullptr;
    PredicateKind kind = PredicateKind::kIdb;
    const Rows* rows = nullptr;            // Regular atoms only.
    unsigned mask = 0;
    std::vector<int> key_code;             // Key values, in position order.
    std::vector<std::pair<int, int>> bind; // (position, variable) to bind.
    std::vector<std::pair<int, int>> checks;  // (position, code) to verify.
  };

  // Built once per clause evaluation (after the clause's dependencies are
  // materialised, so the greedy atom order sees real relation sizes) and
  // shared read-only by every worker joining the same fan-out.
  struct ClausePlan {
    const NdlClause* clause = nullptr;
    std::vector<AtomStep> steps;
    int num_vars = 0;
    // Head emission recipe, one code per head position (same encoding as
    // AtomStep).  Clause safety (every head variable bound by the body) is
    // checked once when this is built, not per emission.
    std::vector<int> head_code;
    // True when step 0 is a full scan of a regular relation, i.e. its row
    // range is splittable into morsels.
    bool splittable = false;
  };

  // Mutable state of one join execution; one per worker per fan-out, so the
  // shared ClausePlan stays read-only.
  struct JoinContext {
    std::vector<int> binding;
    std::vector<int> head_tuple;           // Reused emission buffer.
    std::vector<int> key_buffer;           // Reused across probes.
    std::vector<const Index*> index;       // Per-step lazily fetched cache.
    // Row range of the driver (step 0) scan; the full relation by default,
    // one morsel when fanned out.
    size_t driver_begin = 0;
    size_t driver_end = std::numeric_limits<size_t>::max();
    // Plain tallies (flushed to the metrics registry, if one is installed,
    // after the clause finishes; kept local so the join inner loop never
    // takes the registry lock).
    long emissions = 0;
    long new_tuples = 0;
    // Emissions/new tuples not yet added to the evaluator-wide atomic
    // counters.  The inner loop increments plain ints and calls FlushLimits
    // when `flush_countdown` runs out; the countdown is sized so no limit
    // can be overshot (see FlushLimits), which keeps limit enforcement
    // exact while the hot path performs no atomic read-modify-write.
    long unflushed_emissions = 0;
    long unflushed_new = 0;
    long flush_countdown = 0;  // 0 forces a flush on the first emission.
  };

  // One intra-clause fan-out: workers claim morsels (driver row ranges) off
  // the atomic cursor and join them into their own Rows shard; the owner
  // waits for `completed` to reach `num_morsels` AND `helpers` to drop to
  // zero, then merges the shards.  The helper count covers the stragglers
  // `completed` cannot: a worker that entered the batch but found the
  // cursor already exhausted still reads the batch fields, so the owner
  // must not destroy the (stack-allocated) batch under it.
  struct MorselBatch {
    const ClausePlan* plan = nullptr;
    size_t driver_rows = 0;
    size_t rows_per_morsel = 0;
    size_t num_morsels = 0;
    std::atomic<size_t> cursor{0};     // Next unclaimed driver row.
    std::atomic<size_t> completed{0};  // Morsels fully joined.
    std::atomic<int> helpers{0};       // Workers currently inside the batch.
    std::vector<Rows> shards;          // One per worker id (single writer).
    std::vector<long> emissions;       // Per worker id.
    std::vector<long> new_tuples;
    std::mutex mu;
    std::condition_variable cv;        // Owner waits for completion.
  };

  // Shared state of one EvaluateParallel run: the dependency DAG (atomic
  // remaining-dependency counters plus reverse edges), the ready queue, and
  // the open morsel fan-outs idle workers can join.
  struct Scheduler {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<int> ready;                  // Predicates ready to run.
    std::vector<MorselBatch*> batches;      // Fan-outs with unclaimed work.
    std::unique_ptr<std::atomic<int>[]> remaining;
    std::vector<std::vector<int>> dependents;
    int pending = 0;  // Tasks not yet finished (guarded by mu).
    int idle = 0;     // Workers blocked on cv (guarded by mu).
    bool done = false;
  };

  void Init();
  void StartClock();
  // Polls the wall-clock deadline; on expiry sets deadline_exceeded_ and
  // aborted_ and returns true.  Called from the join emission path and from
  // the EDB-materialisation, index-build and shard-merge loops, so a single
  // oversized relation cannot blow past EvaluatorLimits::deadline_ms.
  bool DeadlineExpired();
  void Materialize(int predicate);
  ClausePlan BuildPlan(const NdlClause& clause);
  // Runs the join of `plan` into `out` over the context's driver range,
  // resetting the context's per-run buffers (but not its tallies).
  void RunJoin(const ClausePlan& plan, JoinContext* ctx, Rows* out);
  void EvaluateClause(const NdlClause& clause, Rows* out);
  // Join/Emit return false to unwind the whole backtracking join after an
  // abort (limit exhausted, deadline expired, or another worker aborted);
  // the hot path carries the signal in the return value instead of
  // re-reading aborted_ at every recursion level.
  bool Join(const ClausePlan& plan, size_t next, JoinContext* ctx,
            Rows* out);
  bool Emit(const ClausePlan& plan, JoinContext* ctx, Rows* out);
  // Adds the context's unflushed tallies to the evaluator-wide atomic
  // counters, enforces max_work / max_generated_tuples exactly, polls the
  // deadline, and re-arms the countdown to min(kDeadlineCheckInterval,
  // distance to the nearest limit).  Returns false iff evaluation aborted.
  bool FlushLimits(JoinContext* ctx);
  // DAG-scheduler internals (see DESIGN.md section 7).
  void SchedulerWorker(Scheduler* sched, int worker_id, int num_workers);
  void RunPredicateTask(Scheduler* sched, int predicate, int worker_id,
                        int num_workers);
  void RunClauseFanOut(Scheduler* sched, const ClausePlan& plan,
                       int worker_id, int num_workers, Rows* out);
  void RunMorsels(MorselBatch* batch, int worker_id);
  long MergeShards(MorselBatch* batch, Rows* out);
  const Index& GetIndex(int predicate, unsigned mask);
  const Rows& EdbRows(int predicate);
  const Rows& RowsFor(int predicate);
  void FillStats(const std::vector<std::vector<int>>& answers,
                 EvaluationStats* stats) const;

  static size_t HashTuple(const int* tuple, int arity);

  const std::vector<int>& ActiveDomain();

  const NdlProgram& program_;
  const DataInstance& data_;
  const TableStore* tables_ = nullptr;  // Not owned; may be null.
  std::vector<int> active_domain_;
  std::once_flag active_domain_once_;
  EvaluatorLimits limits_;
  std::chrono::steady_clock::time_point deadline_;
  bool has_deadline_ = false;
  std::atomic<long> idb_tuples_{0};
  std::atomic<long> work_{0};
  std::atomic<long> index_builds_{0};
  std::atomic<bool> aborted_{false};
  std::atomic<bool> deadline_exceeded_{false};
  std::atomic<long> scheduler_tasks_{0};
  std::atomic<long> morsel_batches_{0};
  std::atomic<long> morsels_{0};
  double slowest_task_ms_ = 0;  // Written under the scheduler mutex.
  std::vector<std::unique_ptr<PredicateState>> preds_;
};

}  // namespace owlqr

#endif  // OWLQR_NDL_EVALUATOR_H_
