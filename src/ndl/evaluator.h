#ifndef OWLQR_NDL_EVALUATOR_H_
#define OWLQR_NDL_EVALUATOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "data/data_instance.h"
#include "data/relation.h"
#include "data/snapshot.h"
#include "data/table_store.h"
#include "ndl/program.h"
#include "util/budget.h"
#include "util/status.h"

namespace owlqr {

struct EvaluationStats {
  // Total tuples materialised across all evaluated IDB predicates (the
  // "generated tuples" column of the paper's Tables 3-5).
  long generated_tuples = 0;
  long goal_tuples = 0;
  int predicates_evaluated = 0;
  // True if evaluation stopped early because a limit was exhausted (the
  // bench harness's analogue of the paper's evaluation timeouts).
  bool aborted = false;
  // True iff the abort was caused by EvaluatorLimits::deadline_ms.
  bool deadline_exceeded = false;
  // True iff the abort was caused by ExecuteRequest::cancel firing.
  bool cancelled = false;
  // True iff the abort was caused by the memory account (per-execution cap
  // or the shared budget) being exceeded.
  bool memory_exceeded = false;
  // True iff some relation refused an insert at the 32-bit row ceiling
  // (see Rows::Insert); always accompanied by `aborted`.
  bool row_ceiling = false;
  // Memory-account readings at the end of the run: bytes still charged and
  // the execution's high-water mark (0 when no account was installed).
  long memory_bytes = 0;
  long memory_high_water = 0;
  // EDB relations whose materialisation was cut short by an abort (deadline,
  // cancel, or memory); when nonzero, `aborted` is set too.  Always zero on
  // the snapshot path, whose relations are built ahead of any request.
  int partial_edbs = 0;
  // Number of (predicate, bound-position mask) hash indexes built by this
  // execution (shared snapshot-cache hits are not counted: the request did
  // not pay for them).
  long index_builds = 0;
  // Per-predicate materialised tuple counts, indexed by predicate id
  // (zero for EDB and unevaluated predicates).
  std::vector<long> predicate_tuples;
  // Parallel (DAG scheduler) path only: predicate tasks run by workers,
  // intra-clause morsel fan-outs, morsels executed, and the wall time of
  // the slowest single predicate task (the critical-path floor a perfectly
  // parallel schedule cannot beat).
  long scheduler_tasks = 0;
  long morsel_batches = 0;
  long morsels = 0;
  double slowest_task_ms = 0;
  // Join emissions (head-tuple productions, duplicates included) across the
  // run — the quantity EvaluatorLimits::max_work bounds.  Identical on the
  // batch and scalar paths, and independent of the worker count.
  long join_emissions = 0;
  // Vector-at-a-time executor tallies (zero when EvaluatorLimits::batch_rows
  // disabled the batch path): elements materialised into column batches
  // across all join stages, bulk hash-index probes issued, and driver
  // sub-ranges idle workers stole from in-flight morsel ranges.
  long batch_rows = 0;
  long batch_probes = 0;
  long steals = 0;
};

struct EvaluatorLimits {
  // Stop materialising once this many IDB tuples exist (<= 0: unlimited).
  long max_generated_tuples = 0;
  // Stop after this many join emissions, counting duplicates (<= 0:
  // unlimited).  Guards against clauses that churn on duplicate tuples
  // without growing any relation.
  long max_work = 0;
  // Wall-clock deadline from the start of Evaluate / EvaluateParallel, in
  // milliseconds (<= 0: unlimited).  The faithful stand-in for the paper's
  // 999 s evaluation timeout.
  long deadline_ms = 0;
  // Intra-clause (morsel) parallelism threshold for EvaluateParallel: when
  // the scheduler would otherwise leave workers idle and a clause's driver
  // atom scans more than this many rows, the scan is split into morsels of
  // this size and fanned out across workers (<= 0 disables splitting).
  long morsel_rows = 2048;
  // Column-batch width of the vector-at-a-time join executor: up to this
  // many elements flow between join steps per batch (capped at 65536).
  // <= 0 disables batching and runs the scalar tuple-at-a-time path — the
  // differential oracle the batch tests compare against.  Answers, stats
  // and limit-abort points are identical either way.
  long batch_rows = 1024;
};

// One evaluation request: per-request limits plus the evaluation mode.
// This is the single knob surface shared by both evaluator entry points,
// Engine::Execute, the CLI and the benches — in place of the former
// scattered (limits ctor param, stats out-param, num_threads arg) plumbing.
struct ExecuteRequest {
  EvaluatorLimits limits;
  // <= 1 runs the sequential evaluator; > 1 runs the dependency-DAG
  // scheduler with this many workers (capped at hardware concurrency).
  int num_threads = 1;
  // Cooperative cancellation: when set, the evaluator polls the token at
  // its deadline poll points and aborts with StatusCode::kCancelled once it
  // fires.  Shared so the caller (and the governor) can keep signalling
  // after the execution finishes.
  std::shared_ptr<const CancelToken> cancel;
  // How long Engine::Execute may hold this request in the admission queue
  // before shedding it with kRejected (< 0: the governor's default;
  // 0: never queue — reject immediately when no slot is free).
  long queue_timeout_ms = -1;
  // Ask Engine::Execute for the semi-naive delta path: when retained IDB
  // state for (this plan, the previous snapshot version) is available, seed
  // evaluation with only the rows ApplyFacts appended since and propagate
  // through the dependency DAG instead of re-evaluating from scratch.
  // Falls back to full evaluation transparently (state miss, abort, or a
  // request with tuple/work limits — a truncated retained state would be
  // unsound to reuse).  Answers are identical either way.
  bool incremental = false;
};

// What an evaluation produced: the sorted goal relation plus the stats the
// run accumulated.  `snapshot_version` is filled by Engine::Execute with
// the version of the DataSnapshot the run was pinned to (0 when evaluation
// ran directly against a DataInstance).
struct ExecuteResult {
  std::vector<std::vector<int>> answers;
  EvaluationStats stats;
  uint64_t snapshot_version = 0;
  // Why the execution ended: kOk for a complete (or merely limit-truncated;
  // see `partial`) run, else the abort cause — kCancelled, kMemoryExceeded,
  // kDeadlineExceeded — or kRejected when admission shed the request before
  // evaluation started.
  Status status;
  // True when `answers` is a sound but possibly incomplete subset: a
  // tuple/work-limit stop, or a degraded retry after memory rejection.
  // Aborts (non-kOk status) always leave partial == true; kOk + partial
  // means a plain limit truncation.
  bool partial = false;
  // True when this result came from the governor's degraded retry (memory
  // rejection, re-run once with tightened max_generated_tuples).
  bool degraded = false;
  // True when the delta path served this result (ExecuteRequest::incremental
  // was set AND retained state was available); false on the full path,
  // including fallbacks of an incremental request.
  bool incremental = false;
  // True when Engine::Execute served this result out of its answer cache —
  // a byte-identical copy of a prior clean complete run at the same
  // (plan, snapshot version, limits) key; no evaluation ran and no
  // admission slot was taken.
  bool cached = false;
  // True when this request coalesced onto an identical in-flight execution
  // and copied the leader's result (whatever its outcome) instead of
  // running itself.
  bool coalesced = false;

  // Heap bytes a retained copy of this result holds (the answer tuples plus
  // the per-predicate stats vector) — what the engine's answer cache
  // charges against the memory budget per resident entry, and what one
  // cache hit or coalesced follower pays to copy.
  size_t MemoryBytes() const;
};

// Join-order hints shared across executions of one prepared program.
//
// The greedy atom order is data-dependent (it scores atoms by relation
// size), so it cannot be compiled into the immutable PreparedQuery at
// prepare time; instead the first execution to plan clause `ci` records
// the order it chose under slots[ci].once, and every later execution
// (same or different snapshot version) reuses it and skips the greedy
// scoring pass.  call_once makes the capture race-free under concurrent
// executions; any order is *correct* (bind/check/head codes are recompiled
// from the order per plan), a stale one is at worst suboptimal.
struct JoinOrderHints {
  struct Slot {
    std::once_flag once;
    std::vector<int> order;  // Body atom indexes, join order.
  };
  // One slot per program clause index.
  std::vector<Slot> slots;

  explicit JoinOrderHints(size_t num_clauses) : slots(num_clauses) {}
  JoinOrderHints(const JoinOrderHints&) = delete;
  JoinOrderHints& operator=(const JoinOrderHints&) = delete;
};

// Materialised IDB state carried between executions of one prepared query
// along a snapshot chain — the seed of the evaluator's semi-naive delta
// path.  `idb_rows[p]` is predicate p's full extension at `version` (moved
// out of the evaluator that produced it; empty vectors for non-IDB ids) and
// `slots[p]` its locally built probe indexes, which stay valid as long as
// the rows do (RunDelta discards the slots of any predicate its delta
// grows).  version == 0 marks the state invalid/empty.  Owned and
// memory-accounted by the engine's retained-state cache; an Evaluator only
// ever borrows it for the duration of one RunDelta.
struct RetainedIdbState {
  uint64_t version = 0;
  std::vector<Rows> idb_rows;
  std::vector<std::unordered_map<unsigned, std::unique_ptr<IndexSlot>>> slots;

  bool valid() const { return version != 0; }
  void Clear() {
    version = 0;
    idb_rows.clear();
    slots.clear();
  }
  // Heap bytes held: rows arenas + dedup tables + retained probe indexes
  // (what the engine charges against its memory budget for keeping this).
  size_t MemoryBytes() const;
};

// Bottom-up evaluator for nonrecursive datalog over a data instance.
//
// IDB predicates are materialised in dependence order; each clause is
// evaluated with a backtracking join over its body using lazily built hash
// indexes per (predicate, bound-position mask).  Equality is a built-in over
// ind(A); TOP is the active domain.  The evaluator assumes (and checks) that
// the program is nonrecursive.
//
// Storage is a flat arena per predicate (data/relation.h's Rows: one
// contiguous int vector with the predicate's arity as stride plus an
// open-addressing hash set for deduplication), so the hot insert path
// performs no per-tuple heap allocation.  Hash indexes live in
// per-predicate slots, each built at most once under a std::once_flag, so
// concurrent indexed lookups on different predicates never contend and
// lookups on the same predicate contend only until the index exists.
//
// Data backends: constructed from a DataInstance (optionally + TableStore),
// EDB relations are materialised into evaluator-local arenas on first use,
// as before; constructed from a shared DataSnapshot, EDB arenas and their
// hash indexes come straight from the snapshot — pre-built, immutable, and
// shared with every concurrent execution pinned to the same snapshot — and
// the evaluator only materialises IDB relations.  The snapshot is held by
// shared_ptr, so an execution keeps its data version alive even after the
// engine swaps in a newer one.
//
// Parallel evaluation (EvaluateParallel) is barrier-free: every IDB
// predicate the goal depends on becomes a task with an atomic
// remaining-dependency counter, workers pull ready tasks from a shared
// queue, and a predicate is enqueued the moment its last dependency
// finishes.  When ready tasks would leave workers idle, a clause whose
// driver atom scans more than EvaluatorLimits::morsel_rows rows is split
// into morsels evaluated concurrently into per-worker Rows shards and then
// merged (see DESIGN.md section 7).  The safety invariant is single writer
// per relation: every EDB relation (including table EDBs) and the active
// domain are materialised eagerly before workers start, each shard is
// written by exactly one worker, the task owner alone merges shards into
// the predicate's canonical Rows, and all other reads are of frozen
// dependency relations or of indexes built under a once-flag.
class Evaluator {
 public:
  Evaluator(const NdlProgram& program, const DataInstance& data,
            const EvaluatorLimits& limits = {});
  // With a source database for kTableEdb predicates (the mapping layer);
  // the active domain is then ind(data) united with the tables' cells.
  Evaluator(const NdlProgram& program, const DataInstance& data,
            const TableStore& tables, const EvaluatorLimits& limits = {});
  // Over a frozen snapshot (see the class comment); the engine's path.
  Evaluator(const NdlProgram& program,
            std::shared_ptr<const DataSnapshot> snapshot,
            const EvaluatorLimits& limits = {});
  ~Evaluator();

  Evaluator(const Evaluator&) = delete;
  Evaluator& operator=(const Evaluator&) = delete;

  // Installs shared join-order hints (not owned; must outlive the
  // evaluator and be sized to the program's clause count).  Must be called
  // before evaluation starts.
  void set_join_order_hints(JoinOrderHints* hints) { hints_ = hints; }

  // Installs the per-execution memory account (not owned; must outlive the
  // evaluator).  Arena growth — IDB relations, dedup tables, locally built
  // probe indexes, morsel shards — is charged to it at the limit-flush
  // cadence; a failed charge aborts the evaluation with memory_exceeded.
  // Must be called before evaluation starts.
  void set_memory_account(MemoryAccount* account) { account_ = account; }

  // Installs the cancellation token (shared; may be null).  Polled at the
  // same points as the deadline.  Must be called before evaluation starts;
  // Run(request) installs request.cancel automatically.
  void set_cancel_token(std::shared_ptr<const CancelToken> cancel) {
    cancel_ = std::move(cancel);
  }

  // One-call facade: applies the request's limits and thread count, runs
  // the matching evaluation path, and returns answers + stats together.
  ExecuteResult Run(const ExecuteRequest& request);

  // The semi-naive delta path (snapshot-backed evaluators only).  Adopts
  // the retained IDB extensions out of `state` (which must hold the exact
  // materialisation of this program at the parent version), seeds round 0
  // with only `delta`'s appended EDB rows — plus synthetic adom/equality
  // delta rows for individuals that newly entered the active domain — and
  // propagates through the cached dependency DAG in topological order:
  // each clause with a non-empty delta body atom is re-joined driven by
  // that delta (all other atoms against the full new extensions, probing
  // the retained/warm indexes), and newly derived tuples merge into the
  // retained relations and extend the head predicate's delta.  Sound and
  // complete for the monotone programs the rewriters emit because
  // deduplication absorbs re-derivations.
  //
  // On a complete run, the updated extensions move back into `state`
  // (version advanced to the snapshot's) for the next delta; on any abort
  // (cancel/deadline/memory/row ceiling) `state` is left Clear()ed and the
  // caller must fall back to full re-evaluation.  Always sequential: a
  // delta is small, so DAG-scheduler fan-out would only add overhead.
  ExecuteResult RunDelta(const ExecuteRequest& request,
                         const SnapshotDelta& delta, RetainedIdbState* state);

  // Moves the materialised IDB extensions (and their locally built probe
  // indexes) out of this evaluator into `state`, stamped with the
  // snapshot's version.  Only meaningful after a complete, un-aborted,
  // unlimited evaluation — the caller guards that; the evaluator must not
  // be used again afterwards.
  void ExtractRetainedState(RetainedIdbState* state);

  // Materialises everything the goal depends on and returns the goal
  // relation, sorted lexicographically.
  std::vector<std::vector<int>> Evaluate(EvaluationStats* stats = nullptr);

  // Like Evaluate, but runs the dependency-DAG scheduler with `num_threads`
  // worker threads (see the class comment).  num_threads <= 1 falls back to
  // the sequential path; larger counts are capped at the hardware
  // concurrency (floor 2), since extra CPU-bound workers only add
  // scheduling overhead.  Answers and counters do not depend on the worker
  // count.
  std::vector<std::vector<int>> EvaluateParallel(
      int num_threads, EvaluationStats* stats = nullptr);

  // Materialises (if needed) and returns one predicate's relation.
  std::vector<std::vector<int>> Relation(int predicate);

 private:
  struct PredicateState {
    Rows rows;
    std::once_flag edb_once;          // Guards EDB materialisation.
    std::mutex slot_mutex;            // Guards the shape of `slots`.
    std::unordered_map<unsigned, std::unique_ptr<IndexSlot>> slots;
  };

  // Per-atom join plan: the static bound-position mask, the resolved
  // relation, and the argument positions to bind or to check against the
  // current binding.  Immutable once built, so a plan can be shared
  // read-only across morsel workers; all run-time state lives in
  // JoinContext.
  //
  // Terms the inner loop reads are pre-compiled into codes so the per-row
  // work never touches a Term again: code >= 0 names a binding slot,
  // code < 0 encodes the constant -(code + 1).
  struct AtomStep {
    const NdlAtom* atom = nullptr;
    PredicateKind kind = PredicateKind::kIdb;
    const Rows* rows = nullptr;            // Regular atoms only.
    unsigned mask = 0;
    std::vector<int> key_code;             // Key values, in position order.
    std::vector<std::pair<int, int>> bind; // (position, variable) to bind.
    std::vector<std::pair<int, int>> checks;  // (position, code) to verify.
  };

  // What one join step does on the batch (vector-at-a-time) path.  Regular
  // atoms are kScan (mask 0: enumerate a row range) or kProbe (mask != 0:
  // bulk hash-index lookup); equality atoms filter (both operands bound),
  // bind (copy-through, kept only for its output recipes) or expand over
  // the active domain; adom atoms filter or expand likewise.
  enum class BatchOp : uint8_t {
    kScan,
    kProbe,
    kEqFilter,
    kEqBind,
    kEqExpand,
    kAdomFilter,
    kAdomExpand,
  };

  // One candidate-row filter of a kScan/kProbe batch step: tuple position
  // `pos` must equal an input-batch column (kSlot: arg = column), a
  // constant (kConst: arg = value), or an earlier position of the same
  // tuple (kTuplePos: arg = position — a repeated variable first bound by
  // this very atom).
  struct BatchCheck {
    enum Kind : uint8_t { kSlot, kConst, kTuplePos };
    Kind kind = kSlot;
    int pos = 0;
    int arg = 0;
  };

  // Recipe for one output column of a batch step: gather from an input
  // column through the selection vector (kFromSlot: arg = column), from
  // the candidate tuple (kFromTuple: arg = position), or broadcast a
  // constant (kConst: arg = value).
  struct BatchOut {
    enum Kind : uint8_t { kFromSlot, kFromTuple, kConst };
    Kind kind = kFromSlot;
    int arg = 0;
  };

  // The batch twin of AtomStep, compiled by CompileBatchPlan.  Column
  // addressing is projection-pruned: a step's output carries only the
  // variables some later step (or the head) still reads, so batches stay
  // narrow on long chain joins.
  struct BatchStep {
    BatchOp op = BatchOp::kScan;
    // Probe key recipe, in bound-position order: >= 0 names an input
    // column, < 0 the constant -(code + 1).  key_len == key_code.size().
    std::vector<int> key_code;
    int key_len = 0;
    // Equality/adom operand codes (same encoding as key_code).
    int code = 0;
    int code_b = 0;
    std::vector<BatchCheck> checks;
    std::vector<BatchOut> out;
    // True when the output batch is the candidate tuple verbatim (every
    // column is kFromTuple position i, width == the relation's arity): an
    // unfiltered scan can then alias the arena rows in place (BatchLevel::
    // ext) instead of gathering a copy.
    bool verbatim = false;
  };

  // Built once per clause evaluation (after the clause's dependencies are
  // materialised, so the greedy atom order sees real relation sizes) and
  // shared read-only by every worker joining the same fan-out.
  struct ClausePlan {
    const NdlClause* clause = nullptr;
    std::vector<AtomStep> steps;
    int num_vars = 0;
    // Head emission recipe, one code per head position (same encoding as
    // AtomStep).  Clause safety (every head variable bound by the body) is
    // checked once when this is built, not per emission.
    std::vector<int> head_code;
    // True when step 0 is a full scan of a regular relation, i.e. its row
    // range is splittable into morsels.
    bool splittable = false;
    // Batch-path recipes, one per step, compiled alongside the scalar codes
    // when EvaluatorLimits::batch_rows > 0 (batch.size() == steps.size()).
    std::vector<BatchStep> batch;
    // Head recipe over the final batch: >= 0 names a column of the last
    // step's output, < 0 the constant -(code + 1).
    std::vector<int> head_slot;
    // True when head_slot is the identity over the final batch (same arity,
    // column i feeds head position i): EmitBatch then hashes and inserts
    // straight from the level columns instead of staging a copy.
    bool head_identity = false;
    bool batch_compiled = false;
  };

  // Mutable state of one join execution; one per worker per fan-out, so the
  // shared ClausePlan stays read-only.
  struct JoinContext {
    std::vector<int> binding;
    std::vector<int> head_tuple;           // Reused emission buffer.
    std::vector<int> key_buffer;           // Reused across probes.
    std::vector<const HashIndex*> index;   // Per-step lazily fetched cache.
    // The relation this context writes and the bytes of it already charged
    // to the memory account; FlushLimits charges the delta, so memory
    // accounting rides the existing flush cadence instead of adding atomics
    // to the emission hot path.  Baselined at RunJoin entry (several
    // sequential contexts may grow the same Rows).
    Rows* out = nullptr;
    size_t charged_bytes = 0;
    // Delta mode only: every tuple newly inserted into `out` is also
    // recorded here (the head predicate's delta, which drives downstream
    // clauses).  Null outside RunDelta.
    Rows* delta_out = nullptr;
    // Row range of the driver (step 0) scan; the full relation by default,
    // one morsel when fanned out.
    size_t driver_begin = 0;
    size_t driver_end = std::numeric_limits<size_t>::max();
    // Plain tallies (flushed to the metrics registry, if one is installed,
    // after the clause finishes; kept local so the join inner loop never
    // takes the registry lock).
    long emissions = 0;
    long new_tuples = 0;
    // Emissions/new tuples not yet added to the evaluator-wide atomic
    // counters.  The inner loop increments plain ints and calls FlushLimits
    // when `flush_countdown` runs out; the countdown is sized so no limit
    // can be overshot (see FlushLimits), which keeps limit enforcement
    // exact while the hot path performs no atomic read-modify-write.
    long unflushed_emissions = 0;
    long unflushed_new = 0;
    long flush_countdown = 0;  // 0 forces a flush on the first emission.

    // ---- Vector-at-a-time executor scratch (EnsureBatchScratch) ----
    // One level per step boundary: levels[s] is the row-major input batch
    // of step s (levels[k] feeds EmitBatch), plus step s's working arrays —
    // the selection vector / candidate rows of pending output elements and,
    // for probe steps, the gathered keys, their hashes and the CSR
    // candidate ranges.  Per-level (not shared) because JoinBatch flushes a
    // full output batch downstream mid-expansion and resumes afterwards,
    // so every level's arrays stay live across the recursion.
    struct BatchLevel {
      std::vector<int> cols;
      // Non-null when this level aliases rows in place (the verbatim-scan
      // zero-copy path) instead of owning gathered columns in `cols`.
      const int* ext = nullptr;
      const int* data() const { return ext != nullptr ? ext : cols.data(); }
      size_t size = 0;
      int width = 0;
      std::vector<uint32_t> sel;
      std::vector<uint32_t> cand;
      std::vector<int> keys;
      std::vector<size_t> hashes;
      std::vector<uint32_t> range_begin;
      std::vector<uint32_t> range_end;
    };
    std::vector<BatchLevel> levels;
    std::vector<int> head_stage;  // Row-major staged head tuples.
    std::vector<size_t> head_hashes;  // Their HashTupleBatch values.
    std::vector<uint32_t> new_idx;    // InsertBatch's new-tuple indices.
    const ClausePlan* scratch_plan = nullptr;  // Plan the scratch is sized for.
    size_t batch_cap = 0;
    // Scratch bytes charged to the memory account (released on context
    // destruction — all contexts die before the evaluator quiesces).
    size_t scratch_charged = 0;
    MemoryAccount* scratch_account = nullptr;
    // Batch metric tallies, flushed once per RunJoin by FlushBatchMetrics.
    long batch_rows_tally = 0;
    long batch_probes_tally = 0;
    long batch_cand_tally = 0;
    long batch_out_tally = 0;
    size_t batch_scanned = 0;  // Abort-poll counter across candidate loops.

    JoinContext() = default;
    JoinContext(const JoinContext&) = delete;
    JoinContext& operator=(const JoinContext&) = delete;
    ~JoinContext() {
      if (scratch_account != nullptr && scratch_charged > 0) {
        scratch_account->Release(scratch_charged);
      }
    }
  };

  // One intra-clause fan-out: workers claim morsels (driver row ranges) off
  // the atomic cursor, publish the range they own in `active[worker]`, and
  // join it chunk by chunk into their own Rows shard; the owner waits for
  // `rows_done` to reach `driver_rows` AND `helpers` to drop to zero, then
  // merges the shards.  When the cursor is exhausted but some worker still
  // owns a large range (the straggler), idle helpers steal the upper half
  // of the largest published range instead of leaving (StealRange).  The
  // helper count covers the stragglers `rows_done` cannot: a worker that
  // entered the batch but found no work still reads the batch fields, so
  // the owner must not destroy the (stack-allocated) batch under it.
  struct MorselBatch {
    const ClausePlan* plan = nullptr;
    size_t driver_rows = 0;
    size_t rows_per_morsel = 0;  // Cursor-claim granularity.
    size_t chunk_rows = 0;       // Within-range processing granularity.
    std::atomic<size_t> cursor{0};     // Next unclaimed driver row.
    std::atomic<size_t> rows_done{0};  // Driver rows fully joined.
    std::atomic<int> helpers{0};       // Workers currently inside the batch.
    std::atomic<long> steals{0};       // Successful StealRange grabs.
    // Per worker id: the driver range the worker currently owns, packed
    // begin << 32 | end (0 = none).  The owner CASes begin forward to
    // consume a chunk; a thief CASes end down to take the upper half.
    std::unique_ptr<std::atomic<uint64_t>[]> active;
    std::vector<Rows> shards;          // One per worker id (single writer).
    std::vector<long> emissions;       // Per worker id.
    std::vector<long> new_tuples;
    std::mutex mu;
    std::condition_variable cv;        // Owner waits for completion.
  };

  // Shared state of one EvaluateParallel run: the dependency DAG (atomic
  // remaining-dependency counters plus reverse edges), the ready queue, and
  // the open morsel fan-outs idle workers can join.
  struct Scheduler {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<int> ready;                  // Predicates ready to run.
    std::vector<MorselBatch*> batches;      // Fan-outs with unclaimed work.
    std::unique_ptr<std::atomic<int>[]> remaining;
    std::vector<std::vector<int>> dependents;
    int pending = 0;  // Tasks not yet finished (guarded by mu).
    int idle = 0;     // Workers blocked on cv (guarded by mu).
    bool done = false;
  };

  void Init();
  void StartClock();
  // Polls the wall-clock deadline; on expiry sets deadline_exceeded_ and
  // aborted_ and returns true.  Called from the join emission path and from
  // the EDB-materialisation, index-build and shard-merge loops, so a single
  // oversized relation cannot blow past EvaluatorLimits::deadline_ms.
  bool DeadlineExpired();
  // The full cooperative abort poll: cancel token, then deadline.  Every
  // former DeadlineExpired() poll site goes through this, so cancellation
  // and deadline share the same latency bound (kDeadlineCheckInterval
  // emissions / kRelationAbortInterval rows).
  bool AbortRequested();
  // Charges `bytes` to the memory account (no-op without one); on a failed
  // charge sets memory_exceeded_ and aborted_ and returns false.
  bool ChargeMemory(size_t bytes);
  // Charges the growth of `rows` since `charged_bytes` (updating it) and
  // folds in the row-ceiling flag; returns false iff evaluation must abort.
  bool ChargeRowsDelta(const Rows& rows, size_t* charged_bytes);
  // Materialises `predicate` (dependencies first); `ctx` is the join
  // context shared by the whole sequential evaluation so the batch scratch
  // is allocated once, not once per clause.
  void Materialize(int predicate, JoinContext* ctx);
  // The greedy join order of `clause` (body atom indexes, best-first),
  // scored against current relation sizes.
  std::vector<int> ComputeJoinOrder(const NdlClause& clause);
  // The greedy-selection core of ComputeJoinOrder, continuing from
  // pre-seeded used/bound state (the delta path seeds them with its driven
  // atom) until every body atom is ordered.
  void ExtendJoinOrderGreedy(const NdlClause& clause, std::vector<int>* order,
                             std::vector<bool>* used,
                             std::vector<bool>* bound);
  // Compiles the plan for clause index `ci`: the join order comes from the
  // shared hints when installed (captured under the slot's once_flag by the
  // first execution to get here), else from ComputeJoinOrder directly.
  ClausePlan BuildPlan(int ci);
  // Compiles `order` into the per-step codes.  When `driven_rows` is given
  // (the delta path), step 0 becomes an unconditional scan of those rows —
  // even for adom/equality atoms, whose synthetic delta rows substitute for
  // the built-ins' procedural evaluation — with constants/repeats demoted
  // to checks.
  ClausePlan CompilePlan(const NdlClause& clause,
                         const std::vector<int>& order,
                         const Rows* driven_rows);
  // The delta plan of clause `ci` driven by body atom `driven_atom`: that
  // atom's delta rows scan first, the rest follow greedily (bypassing the
  // shared hints, whose orders assume a full-size driver).
  ClausePlan BuildDeltaPlan(int ci, int driven_atom,
                            const std::vector<Rows>& delta_rows);
  // Compiles the batch (vector-at-a-time) recipes of `plan`: a liveness
  // pass prunes every step's output to the variables later steps or the
  // head still read, then each step's key/check/output recipes are emitted
  // against those narrowed column layouts.  Called at the end of
  // CompilePlan when limits_.batch_rows > 0.
  void CompileBatchPlan(ClausePlan* plan);
  // Sizes the context's batch scratch for `plan` (no-op when already sized
  // for it) and charges the capacity bytes to the memory account; returns
  // false iff the charge failed (evaluation aborts with memory_exceeded).
  bool EnsureBatchScratch(const ClausePlan& plan, JoinContext* ctx);
  // The batch join: consumes the input batch at ctx->levels[next], appends
  // matches to levels[next + 1], and recurses whenever the output batch
  // fills (or the input is exhausted); next == steps.size() stages and
  // inserts head tuples.  Same false-on-abort contract as Join.
  bool JoinBatch(const ClausePlan& plan, size_t next, JoinContext* ctx,
                 Rows* out);
  // Gathers head tuples from the final batch and inserts them in
  // countdown-bounded runs, flushing limits exactly where the scalar path
  // would — emitted prefixes under a limit abort are byte-identical.
  bool EmitBatch(const ClausePlan& plan, JoinContext* ctx, Rows* out);
  // Folds the context's batch tallies into the evaluator-wide counters and
  // the metrics registry; called once per RunJoin on the batch path.
  void FlushBatchMetrics(JoinContext* ctx);
  // Runs the join of `plan` into `out` over the context's driver range,
  // resetting the context's per-run buffers (but not its tallies).
  void RunJoin(const ClausePlan& plan, JoinContext* ctx, Rows* out);
  void EvaluateClause(int ci, JoinContext* ctx, Rows* out);
  // Join/Emit return false to unwind the whole backtracking join after an
  // abort (limit exhausted, deadline expired, or another worker aborted);
  // the hot path carries the signal in the return value instead of
  // re-reading aborted_ at every recursion level.
  bool Join(const ClausePlan& plan, size_t next, JoinContext* ctx,
            Rows* out);
  bool Emit(const ClausePlan& plan, JoinContext* ctx, Rows* out);
  // Adds the context's unflushed tallies to the evaluator-wide atomic
  // counters, enforces max_work / max_generated_tuples exactly, polls the
  // deadline, and re-arms the countdown to min(kDeadlineCheckInterval,
  // distance to the nearest limit).  Returns false iff evaluation aborted.
  bool FlushLimits(JoinContext* ctx);
  // DAG-scheduler internals (see DESIGN.md section 7).
  void SchedulerWorker(Scheduler* sched, int worker_id, int num_workers);
  void RunPredicateTask(Scheduler* sched, int predicate, int worker_id,
                        int num_workers);
  void RunClauseFanOut(Scheduler* sched, const ClausePlan& plan,
                       int worker_id, int num_workers, Rows* out);
  void RunMorsels(MorselBatch* batch, int worker_id);
  // Steals the upper half of the largest driver range still published in
  // batch->active (>= 2 * chunk_rows remaining); on success stores the
  // stolen range in [*begin, *end) and returns true.  Lock-free: a single
  // CAS on the victim's packed range, retried against its chunk advances.
  bool StealRange(MorselBatch* batch, size_t* begin, size_t* end);
  long MergeShards(MorselBatch* batch, Rows* out);
  const HashIndex& GetIndex(int predicate, unsigned mask);
  const Rows& EdbRows(int predicate);
  const Rows& RowsFor(int predicate);
  void FillStats(const std::vector<std::vector<int>>& answers,
                 EvaluationStats* stats) const;

  const std::vector<int>& ActiveDomain();

  const NdlProgram& program_;
  const DataInstance* data_ = nullptr;  // Null on the snapshot path.
  const TableStore* tables_ = nullptr;  // Not owned; may be null.
  // Pins the data version this execution runs on (see the class comment).
  std::shared_ptr<const DataSnapshot> snapshot_;
  // Per-predicate snapshot relation, resolved once in Init (null for IDB
  // predicates, equality, and EDB predicates the snapshot has no facts
  // for — those fall back to an empty local relation).
  std::vector<const EdbRelation*> snapshot_rel_;
  JoinOrderHints* hints_ = nullptr;  // Not owned; may be null.
  std::vector<int> active_domain_;
  std::once_flag active_domain_once_;
  EvaluatorLimits limits_;
  std::shared_ptr<const CancelToken> cancel_;  // May be null.
  MemoryAccount* account_ = nullptr;           // Not owned; may be null.
  std::chrono::steady_clock::time_point deadline_;
  bool has_deadline_ = false;
  std::atomic<long> idb_tuples_{0};
  std::atomic<long> work_{0};
  std::atomic<long> index_builds_{0};
  std::atomic<bool> aborted_{false};
  std::atomic<bool> deadline_exceeded_{false};
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> memory_exceeded_{false};
  std::atomic<bool> row_ceiling_{false};
  std::atomic<long> scheduler_tasks_{0};
  std::atomic<long> morsel_batches_{0};
  std::atomic<long> morsels_{0};
  std::atomic<long> batch_rows_{0};
  std::atomic<long> batch_probes_{0};
  std::atomic<long> steals_{0};
  double slowest_task_ms_ = 0;  // Written under the scheduler mutex.
  std::vector<std::unique_ptr<PredicateState>> preds_;
};

}  // namespace owlqr

#endif  // OWLQR_NDL_EVALUATOR_H_
