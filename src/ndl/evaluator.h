#ifndef OWLQR_NDL_EVALUATOR_H_
#define OWLQR_NDL_EVALUATOR_H_

#include <atomic>
#include <map>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "data/data_instance.h"
#include "data/table_store.h"
#include "ndl/program.h"

namespace owlqr {

struct EvaluationStats {
  // Total tuples materialised across all evaluated IDB predicates (the
  // "generated tuples" column of the paper's Tables 3-5).
  long generated_tuples = 0;
  long goal_tuples = 0;
  int predicates_evaluated = 0;
  // True if evaluation stopped early because the tuple budget was exhausted
  // (the bench harness's analogue of the paper's evaluation timeouts).
  bool aborted = false;
};

struct EvaluatorLimits {
  // Stop materialising once this many IDB tuples exist (<= 0: unlimited).
  long max_generated_tuples = 0;
  // Stop after this many join emissions, counting duplicates (<= 0:
  // unlimited).  Guards against clauses that churn on duplicate tuples
  // without growing any relation.
  long max_work = 0;
};

// Bottom-up evaluator for nonrecursive datalog over a data instance.
//
// IDB predicates are materialised in dependence order; each clause is
// evaluated with a backtracking join over its body using lazily built hash
// indexes per (predicate, bound-position mask).  Equality is a built-in over
// ind(A); TOP is the active domain.  The evaluator assumes (and checks) that
// the program is nonrecursive.
class Evaluator {
 public:
  Evaluator(const NdlProgram& program, const DataInstance& data,
            const EvaluatorLimits& limits = {});
  // With a source database for kTableEdb predicates (the mapping layer);
  // the active domain is then ind(data) united with the tables' cells.
  Evaluator(const NdlProgram& program, const DataInstance& data,
            const TableStore& tables, const EvaluatorLimits& limits = {});

  // Materialises everything the goal depends on and returns the goal
  // relation, sorted lexicographically.
  std::vector<std::vector<int>> Evaluate(EvaluationStats* stats = nullptr);

  // Like Evaluate, but materialises the predicates of each dependence level
  // concurrently with `num_threads` worker threads (the levels of
  // NdlProgram::TopologicalLevels are mutually independent).  num_threads
  // <= 1 falls back to the sequential path.
  std::vector<std::vector<int>> EvaluateParallel(
      int num_threads, EvaluationStats* stats = nullptr);

  // Materialises (if needed) and returns one predicate's relation.
  const std::vector<std::vector<int>>& Relation(int predicate);

 private:
  struct Rows {
    std::vector<std::vector<int>> tuples;
    // Hash -> indices of tuples with that hash (collisions compared fully).
    std::unordered_map<size_t, std::vector<int>> buckets;
    bool materialized = false;

    bool Insert(const std::vector<int>& tuple);
  };

  // Hash index on the positions set in `mask` (bit i = position i bound).
  using Index = std::unordered_map<size_t, std::vector<int>>;

  void Materialize(int predicate);
  void EvaluateClause(const NdlClause& clause, Rows* out);
  // Recursive join over clause.body in the order `atom_order`.
  void Join(const NdlClause& clause, const std::vector<int>& atom_order,
            size_t next, std::vector<int>* binding, Rows* out);
  const Index& GetIndex(int predicate, unsigned mask);
  const Rows& EdbRows(int predicate);

  static size_t HashTuple(const std::vector<int>& tuple);
  static size_t HashKey(const std::vector<int>& key);

  const std::vector<int>& ActiveDomain();

  const NdlProgram& program_;
  const DataInstance& data_;
  const TableStore* tables_ = nullptr;  // Not owned; may be null.
  std::vector<int> active_domain_;
  bool active_domain_computed_ = false;
  EvaluatorLimits limits_;
  std::atomic<long> idb_tuples_{0};
  std::atomic<long> work_{0};
  std::atomic<bool> aborted_{false};
  std::mutex index_mutex_;  // Guards indexes_ (and EDB materialisation)
                            // during parallel evaluation.
  std::vector<Rows> relations_;
  std::map<std::pair<int, unsigned>, Index> indexes_;
};

}  // namespace owlqr

#endif  // OWLQR_NDL_EVALUATOR_H_
