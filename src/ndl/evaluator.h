#ifndef OWLQR_NDL_EVALUATOR_H_
#define OWLQR_NDL_EVALUATOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "data/data_instance.h"
#include "data/table_store.h"
#include "ndl/program.h"

namespace owlqr {

struct EvaluationStats {
  // Total tuples materialised across all evaluated IDB predicates (the
  // "generated tuples" column of the paper's Tables 3-5).
  long generated_tuples = 0;
  long goal_tuples = 0;
  int predicates_evaluated = 0;
  // True if evaluation stopped early because a limit was exhausted (the
  // bench harness's analogue of the paper's evaluation timeouts).
  bool aborted = false;
  // True iff the abort was caused by EvaluatorLimits::deadline_ms.
  bool deadline_exceeded = false;
  // Number of (predicate, bound-position mask) hash indexes built.
  long index_builds = 0;
  // Per-predicate materialised tuple counts, indexed by predicate id
  // (zero for EDB and unevaluated predicates).
  std::vector<long> predicate_tuples;
  // Parallel path only: wall time per dependence level, in milliseconds.
  std::vector<double> level_wall_ms;
};

struct EvaluatorLimits {
  // Stop materialising once this many IDB tuples exist (<= 0: unlimited).
  long max_generated_tuples = 0;
  // Stop after this many join emissions, counting duplicates (<= 0:
  // unlimited).  Guards against clauses that churn on duplicate tuples
  // without growing any relation.
  long max_work = 0;
  // Wall-clock deadline from the start of Evaluate / EvaluateParallel, in
  // milliseconds (<= 0: unlimited).  The faithful stand-in for the paper's
  // 999 s evaluation timeout.
  long deadline_ms = 0;
};

// Bottom-up evaluator for nonrecursive datalog over a data instance.
//
// IDB predicates are materialised in dependence order; each clause is
// evaluated with a backtracking join over its body using lazily built hash
// indexes per (predicate, bound-position mask).  Equality is a built-in over
// ind(A); TOP is the active domain.  The evaluator assumes (and checks) that
// the program is nonrecursive.
//
// Storage is a flat arena per predicate (one contiguous int vector with the
// predicate's arity as stride) with an open-addressing hash set for
// deduplication, so the hot insert path performs no per-tuple heap
// allocation.  Hash indexes live in per-predicate slots, each built at most
// once under a std::once_flag, so concurrent indexed lookups on different
// predicates never contend and lookups on the same predicate contend only
// until the index exists.
//
// Parallel evaluation (EvaluateParallel) materialises the predicates of each
// dependence level concurrently.  Its safety invariant is single-writer per
// level: every EDB relation (including table EDBs) and the active domain are
// materialised eagerly before workers start, each worker writes only the
// relations of the predicates it owns, and all reads are of frozen
// lower-level relations or of indexes built under a once-flag.
class Evaluator {
 public:
  Evaluator(const NdlProgram& program, const DataInstance& data,
            const EvaluatorLimits& limits = {});
  // With a source database for kTableEdb predicates (the mapping layer);
  // the active domain is then ind(data) united with the tables' cells.
  Evaluator(const NdlProgram& program, const DataInstance& data,
            const TableStore& tables, const EvaluatorLimits& limits = {});
  ~Evaluator();

  Evaluator(const Evaluator&) = delete;
  Evaluator& operator=(const Evaluator&) = delete;

  // Materialises everything the goal depends on and returns the goal
  // relation, sorted lexicographically.
  std::vector<std::vector<int>> Evaluate(EvaluationStats* stats = nullptr);

  // Like Evaluate, but materialises the predicates of each dependence level
  // concurrently with `num_threads` worker threads (the levels of
  // NdlProgram::TopologicalLevels are mutually independent).  num_threads
  // <= 1 falls back to the sequential path.
  std::vector<std::vector<int>> EvaluateParallel(
      int num_threads, EvaluationStats* stats = nullptr);

  // Materialises (if needed) and returns one predicate's relation.
  std::vector<std::vector<int>> Relation(int predicate);

 private:
  // One predicate's extension: a flat row-major arena of `arity`-strided
  // cells plus an open-addressing dedup table (slot = row index + 1).
  struct Rows {
    int arity = 0;
    std::vector<int> cells;
    bool materialized = false;

    size_t size() const { return num_rows_; }
    const int* row(size_t r) const {
      return cells.data() + r * static_cast<size_t>(arity);
    }
    // Inserts `tuple` (arity ints) if new; returns whether it was new.
    bool Insert(const int* tuple);

    std::vector<std::vector<int>> ToTuples() const;

   private:
    void Grow();

    size_t num_rows_ = 0;
    std::vector<uint32_t> slots_;  // Power-of-two sized; 0 = empty.
  };

  // Hash index on the positions set in `mask` (bit i = position i bound):
  // key hash -> rows whose key matches (collisions compared by the caller).
  using Index = std::unordered_map<size_t, std::vector<uint32_t>>;

  struct IndexSlot {
    std::once_flag built;
    Index index;
  };

  struct PredicateState {
    Rows rows;
    std::once_flag edb_once;          // Guards EDB materialisation.
    std::mutex slot_mutex;            // Guards the shape of `slots`.
    std::unordered_map<unsigned, std::unique_ptr<IndexSlot>> slots;
  };

  // Per-atom join plan computed once per clause evaluation: the static
  // bound-position mask, the resolved relation/index, and the argument
  // positions to bind or to check against the current binding.
  struct AtomStep {
    const NdlAtom* atom = nullptr;
    PredicateKind kind = PredicateKind::kIdb;
    const Rows* rows = nullptr;            // Regular atoms only.
    const Index* index = nullptr;          // Fetched lazily when mask != 0.
    unsigned mask = 0;
    std::vector<int> key_positions;        // Statically bound positions.
    std::vector<std::pair<int, int>> bind; // (position, variable) to bind.
    std::vector<int> check_positions;      // Positions verified by value.
    std::vector<int> key_buffer;           // Reused across probes.
  };

  struct ClausePlan {
    const NdlClause* clause = nullptr;
    std::vector<AtomStep> steps;
    std::vector<int> head_tuple;           // Reused emission buffer.
    // Plain per-clause tallies (flushed to the metrics registry, if one is
    // installed, after the clause finishes; kept local so the join inner
    // loop never takes the registry lock).
    long emissions = 0;
    long new_tuples = 0;
  };

  void Init();
  void StartClock();
  // Polls the wall-clock deadline; on expiry sets deadline_exceeded_ and
  // aborted_ and returns true.  Called from the join emission path and from
  // the EDB-materialisation and index-build loops, so a single oversized
  // relation cannot blow past EvaluatorLimits::deadline_ms.
  bool DeadlineExpired();
  void Materialize(int predicate);
  void EvaluateClause(const NdlClause& clause, Rows* out);
  void Join(ClausePlan* plan, size_t next, std::vector<int>* binding,
            Rows* out);
  void Emit(ClausePlan* plan, const std::vector<int>& binding, Rows* out);
  const Index& GetIndex(int predicate, unsigned mask);
  const Rows& EdbRows(int predicate);
  const Rows& RowsFor(int predicate);
  void FillStats(const std::vector<std::vector<int>>& answers,
                 EvaluationStats* stats) const;

  static size_t HashTuple(const int* tuple, int arity);

  const std::vector<int>& ActiveDomain();

  const NdlProgram& program_;
  const DataInstance& data_;
  const TableStore* tables_ = nullptr;  // Not owned; may be null.
  std::vector<int> active_domain_;
  std::once_flag active_domain_once_;
  EvaluatorLimits limits_;
  std::chrono::steady_clock::time_point deadline_;
  bool has_deadline_ = false;
  std::atomic<long> idb_tuples_{0};
  std::atomic<long> work_{0};
  std::atomic<long> index_builds_{0};
  std::atomic<bool> aborted_{false};
  std::atomic<bool> deadline_exceeded_{false};
  std::vector<std::unique_ptr<PredicateState>> preds_;
  std::vector<double> level_wall_ms_;
};

}  // namespace owlqr

#endif  // OWLQR_NDL_EVALUATOR_H_
