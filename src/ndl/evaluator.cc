#include "ndl/evaluator.h"

#include <algorithm>
#include <set>
#include <thread>

#include "util/logging.h"
#include "util/metrics.h"

namespace owlqr {

namespace {

constexpr size_t kHashSeed = 0x9e3779b97f4a7c15ULL;
// How often (in join emissions, EDB rows, or index-build rows) the
// wall-clock deadline is polled.  Power of two: the poll sites test
// `count & (interval - 1)`.
constexpr long kDeadlineCheckInterval = 1024;
// Slot values are row id + 1 stored in 32 bits, so the last representable
// row id is 2^32 - 2; inserting beyond that would silently truncate and
// corrupt deduplication.
constexpr size_t kMaxRowsPerRelation = 0xFFFFFFFEull;
// Crossing this row count bumps evaluator/rows_near_overflow so capacity
// headroom shows up in traces long before the hard check fires.
constexpr size_t kRowsNearOverflow = 1ull << 31;

size_t Mix(size_t h, size_t v) {
  h ^= v + kHashSeed + (h << 6) + (h >> 2);
  return h;
}

// murmur3 finaliser: the open-addressing dedup table masks the *low* bits
// of the hash, so they must avalanche (Mix alone clusters badly on the
// dense sequential ids a vocabulary produces).
size_t FinalMix(size_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

}  // namespace

size_t Evaluator::HashTuple(const int* tuple, int arity) {
  size_t h = 1469598103934665603ULL;
  for (int i = 0; i < arity; ++i) {
    h = Mix(h, static_cast<size_t>(tuple[i]) + 1);
  }
  return FinalMix(h);
}

bool Evaluator::Rows::Insert(const int* tuple) {
  if (arity == 0) {
    // The zero-ary relation holds at most the empty tuple.
    if (num_rows_ > 0) return false;
    num_rows_ = 1;
    return true;
  }
  if ((num_rows_ + 1) * 2 > slots_.size()) Grow();
  size_t mask = slots_.size() - 1;
  size_t pos = HashTuple(tuple, arity) & mask;
  while (slots_[pos] != 0) {
    const int* existing = row(slots_[pos] - 1);
    if (std::equal(tuple, tuple + arity, existing)) return false;
    pos = (pos + 1) & mask;
  }
  OWLQR_CHECK_MSG(num_rows_ < kMaxRowsPerRelation,
                  "relation exceeds 2^32-2 rows; 32-bit dedup slots would "
                  "truncate");
  slots_[pos] = static_cast<uint32_t>(num_rows_ + 1);
  cells.insert(cells.end(), tuple, tuple + arity);
  if (++num_rows_ == kRowsNearOverflow) {
    OWLQR_COUNT("evaluator/rows_near_overflow", 1);
  }
  return true;
}

void Evaluator::Rows::Grow() {
  size_t capacity = slots_.empty() ? 64 : slots_.size() * 2;
  slots_.assign(capacity, 0);
  size_t mask = capacity - 1;
  for (size_t r = 0; r < num_rows_; ++r) {
    size_t pos = HashTuple(row(r), arity) & mask;
    while (slots_[pos] != 0) pos = (pos + 1) & mask;
    slots_[pos] = static_cast<uint32_t>(r + 1);
  }
}

std::vector<std::vector<int>> Evaluator::Rows::ToTuples() const {
  std::vector<std::vector<int>> out;
  out.reserve(num_rows_);
  for (size_t r = 0; r < num_rows_; ++r) {
    out.emplace_back(row(r), row(r) + arity);
  }
  return out;
}

Evaluator::Evaluator(const NdlProgram& program, const DataInstance& data,
                     const EvaluatorLimits& limits)
    : program_(program), data_(data), limits_(limits) {
  Init();
}

Evaluator::Evaluator(const NdlProgram& program, const DataInstance& data,
                     const TableStore& tables, const EvaluatorLimits& limits)
    : program_(program), data_(data), tables_(&tables), limits_(limits) {
  Init();
}

Evaluator::~Evaluator() = default;

void Evaluator::Init() {
  OWLQR_CHECK_MSG(program_.IsNonrecursive(), "program must be nonrecursive");
  preds_.reserve(program_.num_predicates());
  for (int p = 0; p < program_.num_predicates(); ++p) {
    preds_.push_back(std::make_unique<PredicateState>());
    preds_.back()->rows.arity = program_.predicate(p).arity;
  }
}

void Evaluator::StartClock() {
  has_deadline_ = limits_.deadline_ms > 0;
  if (has_deadline_) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(limits_.deadline_ms);
  }
}

bool Evaluator::DeadlineExpired() {
  if (!has_deadline_) return false;
  if (std::chrono::steady_clock::now() < deadline_) return false;
  deadline_exceeded_.store(true, std::memory_order_relaxed);
  aborted_.store(true, std::memory_order_relaxed);
  return true;
}

const std::vector<int>& Evaluator::ActiveDomain() {
  std::call_once(active_domain_once_, [this] {
    active_domain_ = data_.individuals();
    if (tables_ != nullptr) {
      for (int ind : tables_->ActiveDomain()) active_domain_.push_back(ind);
      std::sort(active_domain_.begin(), active_domain_.end());
      active_domain_.erase(
          std::unique(active_domain_.begin(), active_domain_.end()),
          active_domain_.end());
    }
  });
  return active_domain_;
}

const Evaluator::Rows& Evaluator::EdbRows(int predicate) {
  PredicateState& state = *preds_[predicate];
  std::call_once(state.edb_once, [this, predicate, &state] {
    OWLQR_NAMED_SPAN(span, "evaluate/edb");
    Rows& rows = state.rows;
    const PredicateInfo& info = program_.predicate(predicate);
    // Deadline poll shared by the materialisation loops below: an
    // adversarially wide EDB must not blow past deadline_ms just because no
    // join emission happens while it streams in.
    long scanned = 0;
    auto expired = [this, &scanned] {
      return (++scanned & (kDeadlineCheckInterval - 1)) == 0 &&
             DeadlineExpired();
    };
    switch (info.kind) {
      case PredicateKind::kConceptEdb:
        for (int a : data_.ConceptMembers(info.external_id)) {
          rows.Insert(&a);
          if (expired()) break;
        }
        break;
      case PredicateKind::kRoleEdb:
        for (auto [a, b] : data_.RolePairs(info.external_id)) {
          int pair[2] = {a, b};
          rows.Insert(pair);
          if (expired()) break;
        }
        break;
      case PredicateKind::kTableEdb:
        OWLQR_CHECK_MSG(
            tables_ != nullptr,
            "program uses table predicates but no TableStore given");
        for (const std::vector<int>& row : tables_->Rows(info.external_id)) {
          rows.Insert(row.data());
          if (expired()) break;
        }
        break;
      case PredicateKind::kAdom:
        for (int a : ActiveDomain()) {
          rows.Insert(&a);
          if (expired()) break;
        }
        break;
      default:
        OWLQR_CHECK_MSG(false, "EdbRows on IDB/equality predicate");
    }
    rows.materialized = true;
    span.Attr("predicate", predicate);
    span.Attr("rows", static_cast<long>(rows.size()));
    OWLQR_COUNT("evaluator/edb_rows", static_cast<long>(rows.size()));
  });
  return state.rows;
}

const Evaluator::Rows& Evaluator::RowsFor(int predicate) {
  return program_.IsIdb(predicate) ? preds_[predicate]->rows
                                   : EdbRows(predicate);
}

const Evaluator::Index& Evaluator::GetIndex(int predicate, unsigned mask) {
  PredicateState& state = *preds_[predicate];
  IndexSlot* slot;
  {
    std::lock_guard<std::mutex> lock(state.slot_mutex);
    std::unique_ptr<IndexSlot>& entry = state.slots[mask];
    if (entry == nullptr) entry = std::make_unique<IndexSlot>();
    slot = entry.get();
  }
  std::call_once(slot->built, [this, predicate, mask, slot] {
    OWLQR_NAMED_SPAN(span, "evaluate/index-build");
    const bool metrics = OWLQR_METRICS_ENABLED();
    const auto build_start = metrics ? std::chrono::steady_clock::now()
                                     : std::chrono::steady_clock::time_point();
    const Rows& rows = RowsFor(predicate);
    std::vector<int> key_values;
    for (size_t r = 0; r < rows.size(); ++r) {
      // A single huge index build must honour the deadline too; an aborted
      // build leaves a partial index, which is fine because aborted_ stops
      // every consumer before it trusts the results.
      if ((r & (kDeadlineCheckInterval - 1)) == kDeadlineCheckInterval - 1 &&
          DeadlineExpired()) {
        break;
      }
      key_values.clear();
      const int* tuple = rows.row(r);
      for (int i = 0; i < rows.arity; ++i) {
        if (mask & (1u << i)) key_values.push_back(tuple[i]);
      }
      slot->index[HashTuple(key_values.data(),
                            static_cast<int>(key_values.size()))]
          .push_back(static_cast<uint32_t>(r));
    }
    index_builds_.fetch_add(1, std::memory_order_relaxed);
    span.Attr("predicate", predicate);
    span.Attr("mask", static_cast<long>(mask));
    span.Attr("rows", static_cast<long>(rows.size()));
    if (metrics) {
      // Per-(predicate, mask) build time folded into one min/max/sum timer.
      double build_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - build_start)
                            .count();
      OWLQR_RECORD("evaluator/index_build_ms", build_ms);
    }
  });
  return slot->index;
}

void Evaluator::Materialize(int predicate) {
  Rows& rows = preds_[predicate]->rows;
  if (rows.materialized) return;
  if (!program_.IsIdb(predicate)) {
    EdbRows(predicate);
    return;
  }
  // Materialise dependencies first (the program is acyclic).
  for (int ci : program_.ClausesFor(predicate)) {
    for (const NdlAtom& atom : program_.clause(ci).body) {
      if (program_.IsIdb(atom.predicate) && atom.predicate != predicate) {
        Materialize(atom.predicate);
      }
    }
  }
  for (int ci : program_.ClausesFor(predicate)) {
    EvaluateClause(program_.clause(ci), &rows);
  }
  rows.materialized = true;
}

void Evaluator::EvaluateClause(const NdlClause& clause, Rows* out) {
  if (aborted_.load(std::memory_order_relaxed)) return;
  // Static greedy atom order: simulate which variables become bound.
  std::vector<bool> used(clause.body.size(), false);
  std::vector<bool> bound;
  auto var_bound = [&bound](const Term& t) {
    return t.is_constant ||
           (t.value < static_cast<int>(bound.size()) && bound[t.value]);
  };
  int num_vars = 0;
  for (const NdlAtom& atom : clause.body) {
    for (const Term& t : atom.args) {
      if (!t.is_constant) num_vars = std::max(num_vars, t.value + 1);
    }
  }
  for (const Term& t : clause.head.args) {
    if (!t.is_constant) num_vars = std::max(num_vars, t.value + 1);
  }
  bound.assign(num_vars, false);

  ClausePlan plan;
  plan.clause = &clause;
  plan.steps.reserve(clause.body.size());
  for (size_t step = 0; step < clause.body.size(); ++step) {
    int best = -1;
    double best_score = 0;
    for (size_t i = 0; i < clause.body.size(); ++i) {
      if (used[i]) continue;
      const NdlAtom& atom = clause.body[i];
      const PredicateKind kind = program_.predicate(atom.predicate).kind;
      int bound_args = 0;
      for (const Term& t : atom.args) {
        if (var_bound(t)) ++bound_args;
      }
      bool all_bound = bound_args == static_cast<int>(atom.args.size());
      double score;
      if (kind == PredicateKind::kEquality) {
        score = bound_args >= 1 ? 1e9 : -2e9;
      } else if (kind == PredicateKind::kAdom) {
        score = all_bound ? 1e8 : -1e9;
      } else {
        size_t size = RowsFor(atom.predicate).size();
        score = 1e6 * bound_args + (all_bound ? 5e8 : 0) -
                static_cast<double>(size) * 1e-3;
      }
      if (best < 0 || score > best_score) {
        best = static_cast<int>(i);
        best_score = score;
      }
    }
    used[best] = true;

    // Plan the chosen atom against the statically known bound set.  A term
    // is bound at runtime iff it is bound here: constants always, and
    // variables exactly when an earlier atom of the order binds them.
    const NdlAtom& atom = clause.body[best];
    AtomStep& atom_step = plan.steps.emplace_back();
    atom_step.atom = &atom;
    atom_step.kind = program_.predicate(atom.predicate).kind;
    if (atom_step.kind != PredicateKind::kEquality &&
        atom_step.kind != PredicateKind::kAdom) {
      atom_step.rows = &RowsFor(atom.predicate);
      auto binds_var = [&atom_step](int v) {
        for (const auto& [pos, var] : atom_step.bind) {
          if (var == v) return true;
        }
        return false;
      };
      for (size_t i = 0; i < atom.args.size(); ++i) {
        const Term& t = atom.args[i];
        if (var_bound(t)) {
          atom_step.mask |= (1u << i);
          atom_step.key_positions.push_back(static_cast<int>(i));
          // Indexed probes match by hash only; verify the value.
          atom_step.check_positions.push_back(static_cast<int>(i));
        } else if (!binds_var(t.value)) {
          // First occurrence of an open variable in this atom: bind it.
          atom_step.bind.emplace_back(static_cast<int>(i), t.value);
        } else {
          // Repeated open variable: check against the binding just made.
          atom_step.check_positions.push_back(static_cast<int>(i));
        }
      }
    }
    for (const Term& t : atom.args) {
      if (!t.is_constant) bound[t.value] = true;
    }
  }

  plan.head_tuple.resize(clause.head.args.size());
  std::vector<int> binding(num_vars, -1);
  if (MetricsRegistry* metrics = MetricsRegistry::Global()) {
    ScopedSpan span(metrics, "evaluate/join");
    Join(&plan, 0, &binding, out);
    span.Attr("head", clause.head.predicate);
    span.Attr("emissions", plan.emissions);
    span.Attr("new_tuples", plan.new_tuples);
    // Totals feed the dedup hit rate: new_tuples / join_emissions.
    metrics->Count("evaluator/join_emissions", plan.emissions);
    metrics->Count("evaluator/new_tuples", plan.new_tuples);
    metrics->Record("evaluator/clause_emissions",
                    static_cast<double>(plan.emissions));
  } else {
    Join(&plan, 0, &binding, out);
  }
}

void Evaluator::Emit(ClausePlan* plan, const std::vector<int>& binding,
                     Rows* out) {
  const NdlClause& clause = *plan->clause;
  for (size_t i = 0; i < clause.head.args.size(); ++i) {
    const Term& t = clause.head.args[i];
    if (t.is_constant) {
      plan->head_tuple[i] = t.value;
    } else {
      OWLQR_CHECK_MSG(binding[t.value] >= 0, "unsafe clause head");
      plan->head_tuple[i] = binding[t.value];
    }
  }
  if (out->Insert(plan->head_tuple.data())) {
    ++plan->new_tuples;
    long tuples = idb_tuples_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (limits_.max_generated_tuples > 0 &&
        tuples > limits_.max_generated_tuples) {
      aborted_.store(true, std::memory_order_relaxed);
    }
  }
  ++plan->emissions;
  long work = work_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (limits_.max_work > 0 && work > limits_.max_work) {
    aborted_.store(true, std::memory_order_relaxed);
  }
  // Test has_deadline_ first: the common no-deadline case must stay one
  // predictable branch on this hot path (work >= 1, so the mask test is an
  // exact substitute for the modulo).
  if (has_deadline_ && (work & (kDeadlineCheckInterval - 1)) == 0) {
    DeadlineExpired();
  }
}

void Evaluator::Join(ClausePlan* plan, size_t next, std::vector<int>* binding,
                     Rows* out) {
  if (aborted_.load(std::memory_order_relaxed)) return;
  if (next == plan->steps.size()) {
    Emit(plan, *binding, out);
    return;
  }

  AtomStep& step = plan->steps[next];
  const NdlAtom& atom = *step.atom;
  auto term_value = [&](const Term& t) {
    return t.is_constant ? t.value : (*binding)[t.value];
  };

  if (step.kind == PredicateKind::kEquality) {
    int a = term_value(atom.args[0]);
    int b = term_value(atom.args[1]);
    if (a >= 0 && b >= 0) {
      if (a == b) Join(plan, next + 1, binding, out);
      return;
    }
    if (a >= 0 || b >= 0) {
      int value = a >= 0 ? a : b;
      const Term& open = a >= 0 ? atom.args[1] : atom.args[0];
      (*binding)[open.value] = value;
      Join(plan, next + 1, binding, out);
      (*binding)[open.value] = -1;
      return;
    }
    // Both open: enumerate the active domain (rare; kept for completeness).
    for (int ind : ActiveDomain()) {
      (*binding)[atom.args[0].value] = ind;
      (*binding)[atom.args[1].value] = ind;
      Join(plan, next + 1, binding, out);
      (*binding)[atom.args[0].value] = -1;
      (*binding)[atom.args[1].value] = -1;
    }
    return;
  }

  if (step.kind == PredicateKind::kAdom) {
    int a = term_value(atom.args[0]);
    const std::vector<int>& adom = ActiveDomain();
    if (a >= 0) {
      if (std::binary_search(adom.begin(), adom.end(), a)) {
        Join(plan, next + 1, binding, out);
      }
      return;
    }
    for (int ind : adom) {
      (*binding)[atom.args[0].value] = ind;
      Join(plan, next + 1, binding, out);
      (*binding)[atom.args[0].value] = -1;
    }
    return;
  }

  // Regular (IDB or EDB) atom: scan or probe, bind the open positions,
  // verify the checked positions against the candidate row.
  const Rows& rows = *step.rows;
  auto try_row = [&](const int* tuple) {
    for (const auto& [pos, var] : step.bind) {
      (*binding)[var] = tuple[pos];
    }
    bool ok = true;
    for (int pos : step.check_positions) {
      if (term_value(atom.args[pos]) != tuple[pos]) {
        ok = false;
        break;
      }
    }
    if (ok) Join(plan, next + 1, binding, out);
    for (const auto& [pos, var] : step.bind) (*binding)[var] = -1;
  };

  if (step.mask == 0) {
    for (size_t r = 0; r < rows.size(); ++r) try_row(rows.row(r));
    return;
  }
  if (step.index == nullptr) {
    // Fetched lazily so clauses that fail before probing never build it;
    // cached in the (clause-local) plan so each probe is one hash lookup.
    step.index = &GetIndex(atom.predicate, step.mask);
    // The build itself may have exhausted the deadline (leaving a partial
    // index); do not probe it in that case.
    if (aborted_.load(std::memory_order_relaxed)) return;
  }
  step.key_buffer.clear();
  for (int pos : step.key_positions) {
    step.key_buffer.push_back(term_value(atom.args[pos]));
  }
  auto it = step.index->find(HashTuple(
      step.key_buffer.data(), static_cast<int>(step.key_buffer.size())));
  if (it == step.index->end()) return;
  for (uint32_t r : it->second) try_row(rows.row(r));
}

void Evaluator::FillStats(const std::vector<std::vector<int>>& answers,
                          EvaluationStats* stats) const {
  stats->generated_tuples = 0;
  stats->predicates_evaluated = 0;
  stats->aborted = aborted_.load();
  stats->deadline_exceeded = deadline_exceeded_.load();
  stats->index_builds = index_builds_.load();
  stats->predicate_tuples.assign(program_.num_predicates(), 0);
  for (int p = 0; p < program_.num_predicates(); ++p) {
    if (program_.IsIdb(p) && preds_[p]->rows.materialized) {
      long count = static_cast<long>(preds_[p]->rows.size());
      stats->predicate_tuples[p] = count;
      stats->generated_tuples += count;
      ++stats->predicates_evaluated;
    }
  }
  stats->goal_tuples = static_cast<long>(answers.size());
  stats->level_wall_ms = level_wall_ms_;
}

std::vector<std::vector<int>> Evaluator::Evaluate(EvaluationStats* stats) {
  OWLQR_CHECK_MSG(program_.goal() >= 0, "program has no goal predicate");
  OWLQR_NAMED_SPAN(span, "evaluate");
  StartClock();
  Materialize(program_.goal());
  std::vector<std::vector<int>> answers =
      preds_[program_.goal()]->rows.ToTuples();
  std::sort(answers.begin(), answers.end());
  if (stats != nullptr) FillStats(answers, stats);
  span.Attr("goal_tuples", static_cast<long>(answers.size()));
  span.Attr("generated_tuples", idb_tuples_.load(std::memory_order_relaxed));
  span.Attr("aborted", aborted_.load() ? 1 : 0);
  return answers;
}

std::vector<std::vector<int>> Evaluator::Relation(int predicate) {
  Materialize(predicate);
  return preds_[predicate]->rows.ToTuples();
}

std::vector<std::vector<int>> Evaluator::EvaluateParallel(
    int num_threads, EvaluationStats* stats) {
  OWLQR_CHECK_MSG(program_.goal() >= 0, "program has no goal predicate");
  if (num_threads <= 1) return Evaluate(stats);
  OWLQR_NAMED_SPAN(span, "evaluate/parallel");
  span.Attr("threads", num_threads);
  StartClock();

  // Predicates the goal depends on.
  std::set<int> reachable = {program_.goal()};
  std::vector<int> stack = {program_.goal()};
  while (!stack.empty()) {
    int p = stack.back();
    stack.pop_back();
    for (int ci : program_.ClausesFor(p)) {
      for (const NdlAtom& atom : program_.clause(ci).body) {
        if (program_.IsIdb(atom.predicate) &&
            reachable.insert(atom.predicate).second) {
          stack.push_back(atom.predicate);
        }
      }
    }
  }
  // Freeze everything workers may read lazily: the active domain (used by
  // equality and adom atoms) and every EDB relation of any kind, including
  // table EDBs from the mapping layer.
  ActiveDomain();
  for (const NdlClause& clause : program_.clauses()) {
    for (const NdlAtom& atom : clause.body) {
      PredicateKind kind = program_.predicate(atom.predicate).kind;
      if (kind == PredicateKind::kConceptEdb ||
          kind == PredicateKind::kRoleEdb ||
          kind == PredicateKind::kTableEdb || kind == PredicateKind::kAdom) {
        EdbRows(atom.predicate);
      }
    }
  }
  level_wall_ms_.clear();
  for (const std::vector<int>& level : program_.TopologicalLevels()) {
    std::vector<int> todo;
    for (int p : level) {
      if (reachable.count(p) > 0 && !preds_[p]->rows.materialized) {
        todo.push_back(p);
      }
    }
    if (todo.empty()) continue;
    auto level_start = std::chrono::steady_clock::now();
    int workers = std::min<int>(num_threads, static_cast<int>(todo.size()));
    std::atomic<size_t> next{0};
    // Single-writer invariant: each claimed predicate's Rows is written by
    // exactly one worker; all other relations touched are frozen lower
    // levels or pre-materialised EDBs.
    auto work = [&] {
      while (true) {
        size_t i = next.fetch_add(1);
        if (i >= todo.size()) return;
        int p = todo[i];
        for (int ci : program_.ClausesFor(p)) {
          EvaluateClause(program_.clause(ci), &preds_[p]->rows);
        }
        preds_[p]->rows.materialized = true;
      }
    };
    std::vector<std::thread> threads;
    for (int t = 0; t < workers; ++t) threads.emplace_back(work);
    for (std::thread& t : threads) t.join();
    level_wall_ms_.push_back(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - level_start)
            .count());
    OWLQR_RECORD("evaluator/level_wall_ms", level_wall_ms_.back());
  }

  std::vector<std::vector<int>> answers =
      preds_[program_.goal()]->rows.ToTuples();
  std::sort(answers.begin(), answers.end());
  if (stats != nullptr) FillStats(answers, stats);
  span.Attr("goal_tuples", static_cast<long>(answers.size()));
  span.Attr("generated_tuples", idb_tuples_.load(std::memory_order_relaxed));
  span.Attr("aborted", aborted_.load() ? 1 : 0);
  return answers;
}

}  // namespace owlqr
