#include "ndl/evaluator.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "util/logging.h"
#include "util/metrics.h"

namespace owlqr {

namespace {

// How often (in join emissions, EDB rows, index-build rows, or merged shard
// rows) the wall-clock deadline is polled.  The scan loops test
// `count & (interval - 1)` (hence power of two); the join emission path
// uses it as the ceiling of JoinContext::flush_countdown.
constexpr long kDeadlineCheckInterval = kRelationAbortInterval;

}  // namespace

Evaluator::Evaluator(const NdlProgram& program, const DataInstance& data,
                     const EvaluatorLimits& limits)
    : program_(program), data_(&data), limits_(limits) {
  Init();
}

Evaluator::Evaluator(const NdlProgram& program, const DataInstance& data,
                     const TableStore& tables, const EvaluatorLimits& limits)
    : program_(program), data_(&data), tables_(&tables), limits_(limits) {
  Init();
}

Evaluator::Evaluator(const NdlProgram& program,
                     std::shared_ptr<const DataSnapshot> snapshot,
                     const EvaluatorLimits& limits)
    : program_(program), snapshot_(std::move(snapshot)), limits_(limits) {
  OWLQR_CHECK_MSG(snapshot_ != nullptr, "null DataSnapshot");
  Init();
}

Evaluator::~Evaluator() = default;

void Evaluator::Init() {
  OWLQR_CHECK_MSG(program_.IsNonrecursive(), "program must be nonrecursive");
  const int n = program_.num_predicates();
  preds_.reserve(n);
  for (int p = 0; p < n; ++p) {
    preds_.push_back(std::make_unique<PredicateState>());
    preds_.back()->rows.arity = program_.predicate(p).arity;
  }
  snapshot_rel_.assign(n, nullptr);
  if (snapshot_ != nullptr) {
    // Resolve each EDB predicate to its frozen snapshot relation once, so
    // the hot paths do a vector load instead of a hash lookup.  Predicates
    // the snapshot holds no facts for stay null and read as empty.
    for (int p = 0; p < n; ++p) {
      const PredicateInfo& info = program_.predicate(p);
      switch (info.kind) {
        case PredicateKind::kConceptEdb:
          snapshot_rel_[p] = snapshot_->Concept(info.external_id);
          break;
        case PredicateKind::kRoleEdb:
          snapshot_rel_[p] = snapshot_->Role(info.external_id);
          break;
        case PredicateKind::kTableEdb:
          snapshot_rel_[p] = snapshot_->Table(info.external_id);
          break;
        case PredicateKind::kAdom:
          snapshot_rel_[p] = &snapshot_->adom();
          break;
        default:
          break;
      }
    }
  }
}

void Evaluator::StartClock() {
  has_deadline_ = limits_.deadline_ms > 0;
  if (has_deadline_) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(limits_.deadline_ms);
  }
  // A request cancelled before evaluation starts does no work at all: this
  // poll trips aborted_ before the first clause runs.
  AbortRequested();
}

bool Evaluator::DeadlineExpired() {
  if (!has_deadline_) return false;
  if (std::chrono::steady_clock::now() < deadline_) return false;
  deadline_exceeded_.store(true, std::memory_order_relaxed);
  aborted_.store(true, std::memory_order_relaxed);
  return true;
}

bool Evaluator::AbortRequested() {
  // A previous abort (this worker's or another's) short-circuits the
  // (possibly clock-reading) polls below.
  if (aborted_.load(std::memory_order_relaxed)) return true;
  if (cancel_ != nullptr && cancel_->cancelled()) {
    cancelled_.store(true, std::memory_order_relaxed);
    aborted_.store(true, std::memory_order_relaxed);
    return true;
  }
  return DeadlineExpired();
}

bool Evaluator::ChargeMemory(size_t bytes) {
  if (account_ == nullptr || bytes == 0) return true;
  if (!account_->Charge(bytes)) {
    // The bytes stay recorded (they are allocated either way; see
    // util/budget.h); only the verdict aborts the evaluation.
    memory_exceeded_.store(true, std::memory_order_relaxed);
    aborted_.store(true, std::memory_order_relaxed);
    return false;
  }
  return true;
}

bool Evaluator::ChargeRowsDelta(const Rows& rows, size_t* charged_bytes) {
  bool ok = true;
  if (rows.AtRowCeiling()) {
    row_ceiling_.store(true, std::memory_order_relaxed);
    aborted_.store(true, std::memory_order_relaxed);
    ok = false;
  }
  size_t now = rows.MemoryBytes();
  if (now > *charged_bytes) {
    if (!ChargeMemory(now - *charged_bytes)) ok = false;
    // Advance even on a failed charge: the bytes were recorded, so a later
    // delta must not double-charge them.
    *charged_bytes = now;
  }
  return ok;
}

const std::vector<int>& Evaluator::ActiveDomain() {
  if (snapshot_ != nullptr) return snapshot_->active_domain();
  std::call_once(active_domain_once_, [this] {
    active_domain_ = data_->individuals();
    if (tables_ != nullptr) {
      for (int ind : tables_->ActiveDomain()) active_domain_.push_back(ind);
      std::sort(active_domain_.begin(), active_domain_.end());
      active_domain_.erase(
          std::unique(active_domain_.begin(), active_domain_.end()),
          active_domain_.end());
    }
  });
  return active_domain_;
}

const Rows& Evaluator::EdbRows(int predicate) {
  // Snapshot path: the arena was frozen before any request existed.
  if (snapshot_rel_[predicate] != nullptr) {
    return snapshot_rel_[predicate]->rows();
  }
  PredicateState& state = *preds_[predicate];
  std::call_once(state.edb_once, [this, predicate, &state] {
    Rows& rows = state.rows;
    if (snapshot_ != nullptr) {
      // The snapshot holds no facts for this external id: an empty
      // extension, by construction complete.
      rows.materialized = true;
      return;
    }
    OWLQR_NAMED_SPAN(span, "evaluate/edb");
    const PredicateInfo& info = program_.predicate(predicate);
    // Abort poll shared by the materialisation loops below: an
    // adversarially wide EDB must not blow past deadline_ms (or ignore a
    // cancel, or outgrow the memory account) just because no join emission
    // happens while it streams in.  The arena's growth is charged at the
    // same cadence.
    long scanned = 0;
    bool cut_short = false;
    size_t charged = 0;
    auto expired = [this, &rows, &scanned, &cut_short, &charged] {
      if ((++scanned & (kDeadlineCheckInterval - 1)) == 0 &&
          (!ChargeRowsDelta(rows, &charged) || AbortRequested())) {
        cut_short = true;
      }
      return cut_short;
    };
    switch (info.kind) {
      case PredicateKind::kConceptEdb:
        for (int a : data_->ConceptMembers(info.external_id)) {
          rows.Insert(&a);
          if (expired()) break;
        }
        break;
      case PredicateKind::kRoleEdb:
        for (auto [a, b] : data_->RolePairs(info.external_id)) {
          int pair[2] = {a, b};
          rows.Insert(pair);
          if (expired()) break;
        }
        break;
      case PredicateKind::kTableEdb:
        OWLQR_CHECK_MSG(
            tables_ != nullptr,
            "program uses table predicates but no TableStore given");
        for (const std::vector<int>& row : tables_->Rows(info.external_id)) {
          rows.Insert(row.data());
          if (expired()) break;
        }
        break;
      case PredicateKind::kAdom:
        for (int a : ActiveDomain()) {
          rows.Insert(&a);
          if (expired()) break;
        }
        break;
      default:
        OWLQR_CHECK_MSG(false, "EdbRows on IDB/equality predicate");
    }
    // An abort mid-stream leaves a silently incomplete extension; record
    // the partiality (the once_flag means it will never be retried) so
    // FillStats can surface it alongside aborted/deadline_exceeded.
    rows.materialized = true;
    rows.partial = cut_short;
    // Settle the residual arena growth since the last in-loop charge.
    ChargeRowsDelta(rows, &charged);
    if (cut_short) OWLQR_COUNT("evaluator/partial_edbs", 1);
    span.Attr("predicate", predicate);
    span.Attr("rows", static_cast<long>(rows.size()));
    OWLQR_COUNT("evaluator/edb_rows", static_cast<long>(rows.size()));
  });
  return state.rows;
}

const Rows& Evaluator::RowsFor(int predicate) {
  return program_.IsIdb(predicate) ? preds_[predicate]->rows
                                   : EdbRows(predicate);
}

const HashIndex& Evaluator::GetIndex(int predicate, unsigned mask) {
  // Snapshot-backed EDB relations use the snapshot's shared index cache:
  // built once per (relation, mask) across ALL executions.  The build (and
  // the wait for another execution's build) honours this request's abort
  // poll; an aborted build is discarded by the slot, never published, so a
  // partial index cannot poison later requests.  Only a build this request
  // triggered counts toward its index_builds stat, and shared indexes are
  // engine-lifetime assets — they are not charged to the execution's
  // memory account (so a quiesced engine accounts to zero).
  if (snapshot_rel_[predicate] != nullptr) {
    bool built_now = false;
    const HashIndex* index = snapshot_rel_[predicate]->Index(
        mask,
        [](void* arg) {
          return static_cast<Evaluator*>(arg)->AbortRequested();
        },
        this, &built_now);
    if (built_now) index_builds_.fetch_add(1, std::memory_order_relaxed);
    if (index == nullptr) {
      // The abort poll fired (aborted_ is set): hand back an empty index;
      // the caller re-checks aborted_ before probing and unwinds.
      static const HashIndex kEmptyIndex;
      return kEmptyIndex;
    }
    return *index;
  }
  PredicateState& state = *preds_[predicate];
  IndexSlot* slot;
  {
    std::lock_guard<std::mutex> lock(state.slot_mutex);
    std::unique_ptr<IndexSlot>& entry = state.slots[mask];
    if (entry == nullptr) entry = std::make_unique<IndexSlot>();
    slot = entry.get();
  }
  std::call_once(slot->built, [this, predicate, mask, slot] {
    OWLQR_NAMED_SPAN(span, "evaluate/index-build");
    const bool metrics = OWLQR_METRICS_ENABLED();
    const auto build_start = metrics ? std::chrono::steady_clock::now()
                                     : std::chrono::steady_clock::time_point();
    const Rows& rows = RowsFor(predicate);
    // A single huge index build must honour the deadline and cancel token
    // too; an aborted build leaves a partial index, which is fine because
    // aborted_ stops every consumer before it trusts the results.
    BuildHashIndex(
        rows, mask, &slot->index,
        [](void* arg) {
          return static_cast<Evaluator*>(arg)->AbortRequested();
        },
        this);
    index_builds_.fetch_add(1, std::memory_order_relaxed);
    // Locally built probe indexes live in execution-owned arenas; charge
    // them like any other allocation (they release with the account).
    ChargeMemory(slot->index.MemoryBytes());
    span.Attr("predicate", predicate);
    span.Attr("mask", static_cast<long>(mask));
    span.Attr("rows", static_cast<long>(rows.size()));
    if (metrics) {
      // Per-(predicate, mask) build time folded into one min/max/sum timer.
      double build_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - build_start)
                            .count();
      OWLQR_RECORD("evaluator/index_build_ms", build_ms);
    }
  });
  return slot->index;
}

void Evaluator::Materialize(int predicate, JoinContext* ctx) {
  Rows& rows = preds_[predicate]->rows;
  if (rows.materialized) return;
  if (!program_.IsIdb(predicate)) {
    EdbRows(predicate);
    return;
  }
  // Materialise dependencies first (the program is acyclic).
  for (int ci : program_.ClausesFor(predicate)) {
    for (const NdlAtom& atom : program_.clause(ci).body) {
      if (program_.IsIdb(atom.predicate) && atom.predicate != predicate) {
        Materialize(atom.predicate, ctx);
      }
    }
  }
  for (int ci : program_.ClausesFor(predicate)) {
    EvaluateClause(ci, ctx, &rows);
  }
  rows.materialized = true;
}

std::vector<int> Evaluator::ComputeJoinOrder(const NdlClause& clause) {
  // Static greedy atom order: simulate which variables become bound.
  std::vector<bool> used(clause.body.size(), false);
  int num_vars = 0;
  for (const NdlAtom& atom : clause.body) {
    for (const Term& t : atom.args) {
      if (!t.is_constant) num_vars = std::max(num_vars, t.value + 1);
    }
  }
  std::vector<bool> bound(num_vars, false);
  std::vector<int> order;
  order.reserve(clause.body.size());
  ExtendJoinOrderGreedy(clause, &order, &used, &bound);
  return order;
}

void Evaluator::ExtendJoinOrderGreedy(const NdlClause& clause,
                                      std::vector<int>* order,
                                      std::vector<bool>* used,
                                      std::vector<bool>* bound) {
  auto var_bound = [bound](const Term& t) {
    return t.is_constant ||
           (t.value < static_cast<int>(bound->size()) && (*bound)[t.value]);
  };
  while (order->size() < clause.body.size()) {
    int best = -1;
    double best_score = 0;
    for (size_t i = 0; i < clause.body.size(); ++i) {
      if ((*used)[i]) continue;
      const NdlAtom& atom = clause.body[i];
      const PredicateKind kind = program_.predicate(atom.predicate).kind;
      int bound_args = 0;
      for (const Term& t : atom.args) {
        if (var_bound(t)) ++bound_args;
      }
      bool all_bound = bound_args == static_cast<int>(atom.args.size());
      double score;
      if (kind == PredicateKind::kEquality) {
        score = bound_args >= 1 ? 1e9 : -2e9;
      } else if (kind == PredicateKind::kAdom) {
        score = all_bound ? 1e8 : -1e9;
      } else {
        size_t size = RowsFor(atom.predicate).size();
        score = 1e6 * bound_args + (all_bound ? 5e8 : 0) -
                static_cast<double>(size) * 1e-3;
      }
      if (best < 0 || score > best_score) {
        best = static_cast<int>(i);
        best_score = score;
      }
    }
    (*used)[best] = true;
    order->push_back(best);
    for (const Term& t : clause.body[best].args) {
      if (!t.is_constant) (*bound)[t.value] = true;
    }
  }
}

Evaluator::ClausePlan Evaluator::BuildPlan(int ci) {
  const NdlClause& clause = program_.clause(ci);

  // The join order: from the shared hints when installed — the first
  // execution to plan this clause records the greedy order under the
  // slot's once_flag, every later one reuses it without re-scoring (the
  // scores are data-dependent, so a reused order may be stale-suboptimal
  // under a newer snapshot, but any order yields the same answers) — else
  // computed fresh for this evaluation alone.
  std::vector<int> local_order;
  const std::vector<int>* order_ptr;
  if (hints_ != nullptr) {
    OWLQR_CHECK_MSG(ci < static_cast<int>(hints_->slots.size()),
                    "join-order hints sized for a different program");
    JoinOrderHints::Slot& slot = hints_->slots[ci];
    std::call_once(slot.once, [this, &clause, &slot] {
      slot.order = ComputeJoinOrder(clause);
    });
    order_ptr = &slot.order;
  } else {
    local_order = ComputeJoinOrder(clause);
    order_ptr = &local_order;
  }
  return CompilePlan(clause, *order_ptr, nullptr);
}

Evaluator::ClausePlan Evaluator::BuildDeltaPlan(
    int ci, int driven_atom, const std::vector<Rows>& delta_rows) {
  const NdlClause& clause = program_.clause(ci);
  std::vector<bool> used(clause.body.size(), false);
  int num_vars = 0;
  for (const NdlAtom& atom : clause.body) {
    for (const Term& t : atom.args) {
      if (!t.is_constant) num_vars = std::max(num_vars, t.value + 1);
    }
  }
  std::vector<bool> bound(num_vars, false);
  std::vector<int> order;
  order.reserve(clause.body.size());
  // The driven atom scans first (its delta is small, so it is the cheapest
  // driver regardless of what the greedy scores would say), then the rest
  // follow greedily with its variables already bound.
  order.push_back(driven_atom);
  used[driven_atom] = true;
  for (const Term& t : clause.body[driven_atom].args) {
    if (!t.is_constant) bound[t.value] = true;
  }
  ExtendJoinOrderGreedy(clause, &order, &used, &bound);
  return CompilePlan(clause, order,
                     &delta_rows[clause.body[driven_atom].predicate]);
}

Evaluator::ClausePlan Evaluator::CompilePlan(const NdlClause& clause,
                                             const std::vector<int>& order,
                                             const Rows* driven_rows) {
  // Replay the bound-variable simulation over the chosen order and compile
  // the per-step codes.  A term is bound at runtime iff it is bound here:
  // constants always, and variables exactly when an earlier atom of the
  // order binds them.
  std::vector<bool> bound;
  auto var_bound = [&bound](const Term& t) {
    return t.is_constant ||
           (t.value < static_cast<int>(bound.size()) && bound[t.value]);
  };
  int num_vars = 0;
  for (const NdlAtom& atom : clause.body) {
    for (const Term& t : atom.args) {
      if (!t.is_constant) num_vars = std::max(num_vars, t.value + 1);
    }
  }
  for (const Term& t : clause.head.args) {
    if (!t.is_constant) num_vars = std::max(num_vars, t.value + 1);
  }
  bound.assign(num_vars, false);

  // The inner loop's term code: a binding slot for variables, -(value + 1)
  // for constants (individual ids are non-negative, so the ranges are
  // disjoint).
  auto code_of = [](const Term& t) {
    if (t.is_constant) {
      OWLQR_CHECK_MSG(t.value >= 0, "negative constant in clause");
      return -t.value - 1;
    }
    return t.value;
  };

  ClausePlan plan;
  plan.clause = &clause;
  plan.num_vars = num_vars;
  plan.steps.reserve(clause.body.size());
  for (size_t step_index = 0; step_index < order.size(); ++step_index) {
    const int atom_index = order[step_index];
    const NdlAtom& atom = clause.body[atom_index];
    AtomStep& atom_step = plan.steps.emplace_back();
    atom_step.atom = &atom;
    const bool driven = driven_rows != nullptr && step_index == 0;
    // The delta driver is always scanned as a regular relation, even when
    // the atom is an adom/equality built-in: its synthetic delta rows
    // substitute for the built-in's procedural evaluation.
    atom_step.kind =
        driven ? PredicateKind::kIdb : program_.predicate(atom.predicate).kind;
    auto binds_var = [&atom_step](int v) {
      for (const auto& [pos, var] : atom_step.bind) {
        if (var == v) return true;
      }
      return false;
    };
    if (driven) {
      atom_step.rows = driven_rows;
      // mask stays 0: a full scan of the (small) delta, with constants and
      // repeated variables demoted to per-row checks.
      for (size_t i = 0; i < atom.args.size(); ++i) {
        const Term& t = atom.args[i];
        if (t.is_constant) {
          atom_step.checks.emplace_back(static_cast<int>(i), code_of(t));
        } else if (!binds_var(t.value)) {
          atom_step.bind.emplace_back(static_cast<int>(i), t.value);
        } else {
          atom_step.checks.emplace_back(static_cast<int>(i), code_of(t));
        }
      }
    } else if (atom_step.kind != PredicateKind::kEquality &&
               atom_step.kind != PredicateKind::kAdom) {
      atom_step.rows = &RowsFor(atom.predicate);
      for (size_t i = 0; i < atom.args.size(); ++i) {
        const Term& t = atom.args[i];
        if (var_bound(t)) {
          atom_step.mask |= (1u << i);
          atom_step.key_code.push_back(code_of(t));
          // Indexed probes match by hash only; verify the value.
          atom_step.checks.emplace_back(static_cast<int>(i), code_of(t));
        } else if (!binds_var(t.value)) {
          // First occurrence of an open variable in this atom: bind it.
          atom_step.bind.emplace_back(static_cast<int>(i), t.value);
        } else {
          // Repeated open variable: check against the binding just made.
          atom_step.checks.emplace_back(static_cast<int>(i), code_of(t));
        }
      }
    }
    for (const Term& t : atom.args) {
      if (!t.is_constant) bound[t.value] = true;
    }
  }
  // Compile the head recipe and check safety here, once per clause, instead
  // of branching on Terms and re-validating on every emission: a variable
  // is bound at emission depth exactly when some step binds it, which is
  // what `bound` now records.
  plan.head_code.reserve(clause.head.args.size());
  for (const Term& t : clause.head.args) {
    OWLQR_CHECK_MSG(t.is_constant || bound[t.value], "unsafe clause head");
    plan.head_code.push_back(code_of(t));
  }
  plan.splittable = !plan.steps.empty() && plan.steps[0].rows != nullptr &&
                    plan.steps[0].mask == 0;
  if (limits_.batch_rows > 0) CompileBatchPlan(&plan);
  return plan;
}

void Evaluator::CompileBatchPlan(ClausePlan* plan) {
  const size_t k = plan->steps.size();
  if (k == 0) return;  // Empty body: the scalar path emits the one tuple.
  const int nv = plan->num_vars;

  // Pass 1 — static boundness before each step (bound[s][v]: some step < s
  // binds v).  Mirrors the replay in CompilePlan exactly, so a variable is
  // bound at runtime iff it is bound here.
  std::vector<std::vector<char>> bound(k + 1, std::vector<char>(nv, 0));
  for (size_t s = 0; s < k; ++s) {
    bound[s + 1] = bound[s];
    for (const Term& t : plan->steps[s].atom->args) {
      if (!t.is_constant) bound[s + 1][t.value] = 1;
    }
  }
  auto is_bound = [&bound](size_t s, const Term& t) {
    return t.is_constant || bound[s][t.value] != 0;
  };

  // Pass 2 — liveness, backwards: a step's output carries only the
  // variables some later step (or the head) still reads, so batches stay
  // narrow on long chain joins.  live[s] (ascending var ids) is the column
  // layout of step s's output batch — and of step s+1's input batch.
  std::vector<char> needed(nv, 0);
  for (int code : plan->head_code) {
    if (code >= 0) needed[code] = 1;
  }
  std::vector<std::vector<int>> live(k);
  for (size_t s = k; s-- > 0;) {
    for (int v = 0; v < nv; ++v) {
      if (needed[v] && bound[s + 1][v]) live[s].push_back(v);
    }
    const AtomStep& step = plan->steps[s];
    if (step.rows != nullptr) {
      for (int code : step.key_code) {
        if (code >= 0) needed[code] = 1;
      }
      // A check against a variable this very atom binds (a repeated open
      // variable) reads the candidate tuple, not the input batch.
      for (const auto& [pos, code] : step.checks) {
        (void)pos;
        if (code >= 0 && bound[s][code]) needed[code] = 1;
      }
    } else {
      for (const Term& t : step.atom->args) {
        if (!t.is_constant && bound[s][t.value]) needed[t.value] = 1;
      }
    }
  }

  auto slot_of = [](const std::vector<int>& cols, int v) {
    return static_cast<int>(std::lower_bound(cols.begin(), cols.end(), v) -
                            cols.begin());
  };

  // Pass 3 — per-step recipes against the narrowed column layouts.
  static const std::vector<int> kNoCols;
  plan->batch.resize(k);
  for (size_t s = 0; s < k; ++s) {
    const AtomStep& step = plan->steps[s];
    BatchStep& bs = plan->batch[s];
    const std::vector<int>& in = s == 0 ? kNoCols : live[s - 1];
    const std::vector<int>& outv = live[s];
    // Scalar term code -> batch code: constants keep their encoding,
    // variables become input-column indexes.
    auto bcode = [&](int code) { return code < 0 ? code : slot_of(in, code); };
    auto bterm = [&](const Term& t) {
      return t.is_constant ? -t.value - 1 : slot_of(in, t.value);
    };
    auto pass_through = [&](int v) {
      return BatchOut{BatchOut::kFromSlot, slot_of(in, v)};
    };

    if (step.rows != nullptr) {
      bs.op = step.mask == 0 ? BatchOp::kScan : BatchOp::kProbe;
      bs.key_code.reserve(step.key_code.size());
      for (int code : step.key_code) bs.key_code.push_back(bcode(code));
      bs.key_len = static_cast<int>(bs.key_code.size());
      bs.checks.reserve(step.checks.size());
      for (const auto& [pos, code] : step.checks) {
        BatchCheck c;
        c.pos = pos;
        if (code < 0) {
          c.kind = BatchCheck::kConst;
          c.arg = -code - 1;
        } else if (bound[s][code]) {
          c.kind = BatchCheck::kSlot;
          c.arg = slot_of(in, code);
        } else {
          c.kind = BatchCheck::kTuplePos;
          for (const auto& [bpos, var] : step.bind) {
            if (var == code) {
              c.arg = bpos;
              break;
            }
          }
        }
        bs.checks.push_back(c);
      }
      bs.out.reserve(outv.size());
      for (int v : outv) {
        int bind_pos = -1;
        for (const auto& [bpos, var] : step.bind) {
          if (var == v) {
            bind_pos = bpos;
            break;
          }
        }
        bs.out.push_back(bind_pos >= 0
                             ? BatchOut{BatchOut::kFromTuple, bind_pos}
                             : pass_through(v));
      }
      bs.verbatim =
          static_cast<int>(bs.out.size()) == step.rows->arity;
      for (size_t j = 0; j < bs.out.size(); ++j) {
        if (bs.out[j].kind != BatchOut::kFromTuple ||
            bs.out[j].arg != static_cast<int>(j)) {
          bs.verbatim = false;
        }
      }
    } else if (step.kind == PredicateKind::kEquality) {
      const Term& a = step.atom->args[0];
      const Term& b = step.atom->args[1];
      const bool ba = is_bound(s, a);
      const bool bb = is_bound(s, b);
      if (ba && bb) {
        bs.op = BatchOp::kEqFilter;
        bs.code = bterm(a);
        bs.code_b = bterm(b);
        for (int v : outv) bs.out.push_back(pass_through(v));
      } else if (ba || bb) {
        // One side open: binds it to the bound side's value — a 1:1
        // pass-through whose only work is the open variable's column.
        bs.op = BatchOp::kEqBind;
        bs.code = bterm(ba ? a : b);
        const int open = (ba ? b : a).value;
        for (int v : outv) {
          if (v == open) {
            bs.out.push_back(bs.code < 0
                                 ? BatchOut{BatchOut::kConst, -bs.code - 1}
                                 : BatchOut{BatchOut::kFromSlot, bs.code});
          } else {
            bs.out.push_back(pass_through(v));
          }
        }
      } else {
        // Both open (rare): enumerate the active domain, binding both.
        bs.op = BatchOp::kEqExpand;
        for (int v : outv) {
          bs.out.push_back(v == a.value || v == b.value
                               ? BatchOut{BatchOut::kFromTuple, 0}
                               : pass_through(v));
        }
      }
    } else {  // kAdom
      const Term& a = step.atom->args[0];
      if (is_bound(s, a)) {
        bs.op = BatchOp::kAdomFilter;
        bs.code = bterm(a);
        for (int v : outv) bs.out.push_back(pass_through(v));
      } else {
        bs.op = BatchOp::kAdomExpand;
        for (int v : outv) {
          bs.out.push_back(v == a.value ? BatchOut{BatchOut::kFromTuple, 0}
                                        : pass_through(v));
        }
      }
    }
  }
  // Head recipe over the final batch, whose columns are exactly the head
  // variables (liveness was seeded with them).
  plan->head_slot.reserve(plan->head_code.size());
  for (int code : plan->head_code) {
    plan->head_slot.push_back(code < 0 ? code : slot_of(live[k - 1], code));
  }
  plan->head_identity = plan->head_slot.size() == live[k - 1].size();
  for (size_t i = 0; i < plan->head_slot.size(); ++i) {
    if (plan->head_slot[i] != static_cast<int>(i)) plan->head_identity = false;
  }
  plan->batch_compiled = true;
}

void Evaluator::RunJoin(const ClausePlan& plan, JoinContext* ctx,
                        Rows* out) {
  ctx->index.assign(plan.steps.size(), nullptr);
  // Memory-charge baseline: whatever `out` holds now was charged when the
  // code that grew it settled (the invariant every growth path keeps), so
  // this run charges only its own delta — captured before the Reserve
  // below, whose allocation is part of that delta.
  ctx->out = out;
  ctx->charged_bytes = out->MemoryBytes();
  if (!plan.steps.empty() && plan.steps[0].rows != nullptr &&
      plan.steps[0].mask == 0) {
    // A scan-driven clause usually emits on the order of its driver range;
    // hint the dedup table so it skips the doubling cascade (Reserve bounds
    // the hint, so selective clauses cannot over-allocate).
    size_t end = std::min(plan.steps[0].rows->size(), ctx->driver_end);
    if (end > ctx->driver_begin) {
      out->Reserve(out->size() + (end - ctx->driver_begin));
    }
  }
  if (plan.batch_compiled) {
    // Vector-at-a-time path: expansion is row-major and in driver order, so
    // the emission sequence — and with it every counter, limit-abort point
    // and truncated answer prefix — is byte-identical to the scalar path's
    // depth-first recursion.
    if (!aborted_.load(std::memory_order_relaxed) &&
        EnsureBatchScratch(plan, ctx)) {
      ctx->levels[0].size = 1;  // One empty binding seeds the root scan.
      JoinBatch(plan, 0, ctx, out);
      ctx->levels[0].size = 0;
    }
    FlushBatchMetrics(ctx);
  } else {
    ctx->binding.assign(plan.num_vars, -1);
    ctx->head_tuple.resize(plan.clause->head.args.size());
    Join(plan, 0, ctx, out);
  }
  // Settle the residual tallies so the evaluator-wide counters (and the
  // fan-out owner's shard accounting) see every emission of this run.
  if (ctx->unflushed_emissions != 0 || ctx->unflushed_new != 0) {
    FlushLimits(ctx);
  }
  // Settle the residual arena growth too, keeping the invariant that a
  // fully-run clause leaves its output's MemoryBytes fully charged.
  ChargeRowsDelta(*out, &ctx->charged_bytes);
}

bool Evaluator::EnsureBatchScratch(const ClausePlan& plan, JoinContext* ctx) {
  // Morsel workers re-enter with the same (stable) plan object, so pointer
  // identity short-circuits the chunk loop.  Callers that run a context
  // across *different* plans (one per clause) clear scratch_plan between
  // runs — plan objects there are stack locals whose addresses can repeat.
  if (ctx->scratch_plan == &plan) return true;
  const size_t cap = static_cast<size_t>(
      std::min<long>(std::max<long>(limits_.batch_rows, 1), 65536));
  const size_t k = plan.steps.size();
  ctx->batch_cap = cap;
  // Never shrink the level list: a retained context runs many plans in a
  // row (one per clause of a task), and keeping the levels keeps their
  // vectors' capacity — after the first few clauses re-setup allocates
  // nothing.  Stale levels beyond k end every run at size 0, so they are
  // inert; their bytes stay counted below.
  if (ctx->levels.size() < k + 1) ctx->levels.resize(k + 1);
  size_t bytes = 0;
  for (size_t s = 0; s <= k; ++s) {
    JoinContext::BatchLevel& lv = ctx->levels[s];
    lv.width = s == 0 ? 0 : static_cast<int>(plan.batch[s - 1].out.size());
    lv.cols.resize(static_cast<size_t>(lv.width) * cap);
    lv.size = 0;
    lv.ext = nullptr;  // Any zero-copy alias belongs to a finished run.
    if (s < k) {
      const BatchStep& bs = plan.batch[s];
      switch (bs.op) {
        case BatchOp::kScan:
        case BatchOp::kProbe:
        case BatchOp::kEqExpand:
        case BatchOp::kAdomExpand:
          lv.sel.resize(cap);
          lv.cand.resize(cap);
          break;
        case BatchOp::kEqFilter:
        case BatchOp::kAdomFilter:
          lv.sel.resize(cap);
          break;
        case BatchOp::kEqBind:
          break;
      }
      if (bs.op == BatchOp::kProbe) {
        lv.keys.resize(static_cast<size_t>(bs.key_len) * cap);
        lv.hashes.resize(cap);
        lv.range_begin.resize(cap);
        lv.range_end.resize(cap);
      }
    }
  }
  for (const JoinContext::BatchLevel& lv : ctx->levels) {
    bytes += lv.cols.capacity() * sizeof(int) +
             (lv.sel.capacity() + lv.cand.capacity()) * sizeof(uint32_t) +
             lv.keys.capacity() * sizeof(int) +
             lv.hashes.capacity() * sizeof(size_t) +
             (lv.range_begin.capacity() + lv.range_end.capacity()) *
                 sizeof(uint32_t);
  }
  if (ctx->head_stage.size() < plan.head_slot.size() * cap) {
    ctx->head_stage.resize(plan.head_slot.size() * cap);
  }
  if (ctx->head_hashes.size() < cap) {
    ctx->head_hashes.resize(cap);
    ctx->new_idx.resize(cap);
  }
  bytes += ctx->head_stage.capacity() * sizeof(int) +
           ctx->head_hashes.capacity() * sizeof(size_t) +
           ctx->new_idx.capacity() * sizeof(uint32_t);
  ctx->scratch_plan = &plan;
  // Charge the scratch like any other execution-owned allocation; the
  // context's destructor gives the bytes back.  Even a failed charge stays
  // recorded (the memory is allocated either way; see util/budget.h).
  if (account_ != nullptr && bytes != ctx->scratch_charged) {
    ctx->scratch_account = account_;
    bool ok = true;
    if (bytes > ctx->scratch_charged) {
      ok = ChargeMemory(bytes - ctx->scratch_charged);
    } else {
      account_->Release(ctx->scratch_charged - bytes);
    }
    ctx->scratch_charged = bytes;
    return ok;
  }
  return true;
}

bool Evaluator::JoinBatch(const ClausePlan& plan, size_t next,
                          JoinContext* ctx, Rows* out) {
  if (next == plan.steps.size()) return EmitBatch(plan, ctx, out);
  JoinContext::BatchLevel& in = ctx->levels[next];
  const size_t n = in.size;
  if (n == 0) return true;
  const AtomStep& step = plan.steps[next];
  const BatchStep& bs = plan.batch[next];
  JoinContext::BatchLevel& outb = ctx->levels[next + 1];
  const size_t cap = ctx->batch_cap;
  const int in_width = in.width;
  const int out_width = outb.width;
  const int* in_cols = in.data();
  int* out_cols = outb.cols.data();

  auto operand = [&](int code, size_t i) {
    return code >= 0 ? in_cols[i * static_cast<size_t>(in_width) + code]
                     : -code - 1;
  };

  // Candidate tuple source of kFromTuple output recipes: the step's
  // relation rows, or the active domain (arity 1) for the expand built-ins.
  const int* tuple_base = nullptr;
  int tuple_arity = 1;
  if (step.rows != nullptr) {
    tuple_base = step.rows->size() > 0 ? step.rows->row(0) : nullptr;
    tuple_arity = step.rows->arity;
  } else if (bs.op == BatchOp::kEqExpand || bs.op == BatchOp::kAdomExpand) {
    tuple_base = ActiveDomain().data();
  }

  // Gathers the `m` pending (sel, cand) pairs into the output batch, one
  // tight loop per column — the shape the compiler can vectorise.
  uint32_t* sel = in.sel.data();
  uint32_t* cand = in.cand.data();
  auto gather = [&](size_t m) {
    for (size_t oi = 0; oi < bs.out.size(); ++oi) {
      const BatchOut& o = bs.out[oi];
      int* dst = out_cols + oi;
      switch (o.kind) {
        case BatchOut::kFromSlot: {
          const int* src = in_cols + o.arg;
          for (size_t j = 0; j < m; ++j) {
            dst[j * out_width] = src[sel[j] * static_cast<size_t>(in_width)];
          }
          break;
        }
        case BatchOut::kFromTuple: {
          const int* src = tuple_base + o.arg;
          for (size_t j = 0; j < m; ++j) {
            dst[j * out_width] =
                src[cand[j] * static_cast<size_t>(tuple_arity)];
          }
          break;
        }
        case BatchOut::kConst:
          for (size_t j = 0; j < m; ++j) dst[j * out_width] = o.arg;
          break;
      }
    }
    outb.size = m;
  };
  size_t m = 0;
  auto flush = [&]() {
    gather(m);
    ctx->batch_rows_tally += static_cast<long>(m);
    ctx->batch_out_tally += static_cast<long>(m);
    m = 0;
    bool ok = JoinBatch(plan, next + 1, ctx, out);
    outb.size = 0;
    return ok;
  };
  // Cooperative abort poll for long candidate stretches that emit nothing
  // (same cadence as the scalar path's flush interval).
  auto abort_poll = [&]() {
    return (++ctx->batch_scanned & (kDeadlineCheckInterval - 1)) == 0 &&
           AbortRequested();
  };

  switch (bs.op) {
    case BatchOp::kEqBind: {
      // 1:1 pass-through; only the open variable's column is new.
      for (size_t oi = 0; oi < bs.out.size(); ++oi) {
        const BatchOut& o = bs.out[oi];
        int* dst = out_cols + oi;
        if (o.kind == BatchOut::kConst) {
          for (size_t j = 0; j < n; ++j) dst[j * out_width] = o.arg;
        } else {
          const int* src = in_cols + o.arg;
          for (size_t j = 0; j < n; ++j) {
            dst[j * out_width] = src[j * static_cast<size_t>(in_width)];
          }
        }
      }
      outb.size = n;
      ctx->batch_rows_tally += static_cast<long>(n);
      bool ok = JoinBatch(plan, next + 1, ctx, out);
      outb.size = 0;
      return ok;
    }
    case BatchOp::kEqFilter: {
      // Branch-free selection build, then one gather.
      for (size_t i = 0; i < n; ++i) {
        sel[m] = static_cast<uint32_t>(i);
        m += operand(bs.code, i) == operand(bs.code_b, i) ? 1 : 0;
      }
      ctx->batch_cand_tally += static_cast<long>(n);
      return m == 0 || flush();
    }
    case BatchOp::kAdomFilter: {
      const std::vector<int>& adom = ActiveDomain();
      for (size_t i = 0; i < n; ++i) {
        sel[m] = static_cast<uint32_t>(i);
        m += std::binary_search(adom.begin(), adom.end(), operand(bs.code, i))
                 ? 1
                 : 0;
      }
      ctx->batch_cand_tally += static_cast<long>(n);
      return m == 0 || flush();
    }
    case BatchOp::kEqExpand:
    case BatchOp::kAdomExpand: {
      const size_t adom_size = ActiveDomain().size();
      for (size_t i = 0; i < n; ++i) {
        for (size_t r = 0; r < adom_size; ++r) {
          if (abort_poll()) return false;
          sel[m] = static_cast<uint32_t>(i);
          cand[m] = static_cast<uint32_t>(r);
          if (++m == cap && !flush()) return false;
        }
      }
      ctx->batch_cand_tally += static_cast<long>(n * adom_size);
      return m == 0 || flush();
    }
    case BatchOp::kScan: {
      const Rows& rows = *step.rows;
      size_t begin = 0;
      size_t end = rows.size();
      if (next == 0) {
        // The driver scan honours the context's row range (the whole
        // relation by default, one morsel/chunk under a fan-out).
        begin = ctx->driver_begin;
        end = std::min(end, ctx->driver_end);
      }
      if (bs.checks.empty() && bs.verbatim && &rows != out) {
        // Zero-copy scan: the output batch is the candidate tuple verbatim,
        // so each chunk of consecutive arena rows becomes the next level's
        // batch in place (BatchLevel::ext) — no selection vectors, no
        // gather.  A copy clause thus runs as hash + dedup-insert straight
        // off the source arena.  Emission order and all limit counters are
        // unchanged; the &rows != out guard keeps the aliased rows stable
        // while `out` grows (impossible for stratified programs, but cheap).
        for (size_t i = 0; i < n; ++i) {
          for (size_t r = begin; r < end;) {
            const size_t take = std::min(end - r, cap);
            ctx->batch_scanned += static_cast<long>(take);
            if (AbortRequested()) return false;
            outb.ext = rows.row(r);
            outb.size = take;
            ctx->batch_rows_tally += static_cast<long>(take);
            ctx->batch_out_tally += static_cast<long>(take);
            const bool ok = JoinBatch(plan, next + 1, ctx, out);
            outb.size = 0;
            outb.ext = nullptr;
            if (!ok) return false;
            r += take;
          }
          ctx->batch_cand_tally += static_cast<long>(end - begin);
        }
        return true;
      }
      if (bs.checks.empty()) {
        // Unfiltered scan: every row qualifies, so the selection vectors
        // fill in branch-free consecutive runs (one abort poll per run
        // instead of per candidate — deadline cadence only, which is
        // nondeterministic anyway; emission order is unchanged).
        for (size_t i = 0; i < n; ++i) {
          size_t r = begin;
          while (r < end) {
            const size_t take = std::min(end - r, cap - m);
            for (size_t t = 0; t < take; ++t) {
              sel[m + t] = static_cast<uint32_t>(i);
              cand[m + t] = static_cast<uint32_t>(r + t);
            }
            ctx->batch_scanned += take;
            if (AbortRequested()) return false;
            m += take;
            r += take;
            if (m == cap && !flush()) return false;
          }
          ctx->batch_cand_tally += static_cast<long>(end - begin);
        }
        return m == 0 || flush();
      }
      for (size_t i = 0; i < n; ++i) {
        for (size_t r = begin; r < end; ++r) {
          if (abort_poll()) return false;
          const int* tuple = rows.row(r);
          bool ok = true;
          for (const BatchCheck& c : bs.checks) {
            const int want =
                c.kind == BatchCheck::kSlot
                    ? in_cols[i * static_cast<size_t>(in_width) + c.arg]
                    : (c.kind == BatchCheck::kConst ? c.arg : tuple[c.arg]);
            if (tuple[c.pos] != want) {
              ok = false;
              break;
            }
          }
          if (!ok) continue;
          sel[m] = static_cast<uint32_t>(i);
          cand[m] = static_cast<uint32_t>(r);
          if (++m == cap && !flush()) return false;
        }
        ctx->batch_cand_tally += static_cast<long>(end - begin);
      }
      return m == 0 || flush();
    }
    case BatchOp::kProbe:
      break;  // Falls through to the bulk-probe body below.
  }

  const HashIndex*& index = ctx->index[next];
  if (index == nullptr) {
    // Fetched lazily so clauses that fail before probing never build it.
    index = &GetIndex(step.atom->predicate, step.mask);
    // The build itself may have exhausted the deadline (leaving a partial
    // index); do not probe it in that case.
    if (aborted_.load(std::memory_order_relaxed)) return false;
  }
  // Key gather + batched hashing + bulk probe: each a tight loop over the
  // whole input batch, replacing the per-probe HashTuple/Find pair of the
  // scalar path.
  const int kl = bs.key_len;
  int* keys = in.keys.data();
  for (int j = 0; j < kl; ++j) {
    const int code = bs.key_code[j];
    int* dst = keys + j;
    if (code >= 0) {
      const int* src = in_cols + code;
      for (size_t i = 0; i < n; ++i) {
        dst[i * static_cast<size_t>(kl)] =
            src[i * static_cast<size_t>(in_width)];
      }
    } else {
      const int value = -code - 1;
      for (size_t i = 0; i < n; ++i) {
        dst[i * static_cast<size_t>(kl)] = value;
      }
    }
  }
  HashTupleBatch(keys, kl, n, in.hashes.data());
  index->FindBatch(in.hashes.data(), n, in.range_begin.data(),
                   in.range_end.data());
  ctx->batch_probes_tally += static_cast<long>(n);
  const Rows& rows = *step.rows;
  const uint32_t* ids = index->ids.data();
  for (size_t i = 0; i < n; ++i) {
    const uint32_t rb = in.range_begin[i];
    const uint32_t re = in.range_end[i];
    ctx->batch_cand_tally += static_cast<long>(re - rb);
    for (uint32_t t = rb; t < re; ++t) {
      if (t + 1 < re) {
        // Candidate rows land all over the arena; fetching the next one
        // while this one joins hides most of that latency.
        __builtin_prefetch(rows.row(ids[t + 1]));
      }
      if (abort_poll()) return false;
      const uint32_t r = ids[t];
      const int* tuple = rows.row(r);
      bool ok = true;
      for (const BatchCheck& c : bs.checks) {
        const int want =
            c.kind == BatchCheck::kSlot
                ? in_cols[i * static_cast<size_t>(in_width) + c.arg]
                : (c.kind == BatchCheck::kConst ? c.arg : tuple[c.arg]);
        if (tuple[c.pos] != want) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      sel[m] = static_cast<uint32_t>(i);
      cand[m] = r;
      if (++m == cap && !flush()) return false;
    }
  }
  return m == 0 || flush();
}

bool Evaluator::EmitBatch(const ClausePlan& plan, JoinContext* ctx,
                          Rows* out) {
  JoinContext::BatchLevel& in = ctx->levels[plan.steps.size()];
  const size_t n = in.size;
  if (n == 0) return true;
  const int width = in.width;
  const int* in_cols = in.data();
  const int head_arity = static_cast<int>(plan.head_slot.size());
  const int* stage = in_cols;
  if (!plan.head_identity) {
    // Permute/project the level columns into head order.  Skipped when the
    // head is the identity over the final layout — the level batch is
    // already row-major head tuples and feeds the hash/insert passes as-is.
    int* staged = ctx->head_stage.data();
    for (int oi = 0; oi < head_arity; ++oi) {
      const int code = plan.head_slot[oi];
      int* dst = staged + oi;
      if (code >= 0) {
        const int* src = in_cols + code;
        for (size_t j = 0; j < n; ++j) {
          dst[j * head_arity] = src[j * static_cast<size_t>(width)];
        }
      } else {
        const int value = -code - 1;
        for (size_t j = 0; j < n; ++j) dst[j * head_arity] = value;
      }
    }
    stage = staged;
  }
  // One vectorisable hashing pass over the staged run, then insert in
  // countdown-bounded sub-runs so limits flush on exactly the emission the
  // scalar path would flush on: abort points, counters and truncated answer
  // prefixes stay byte-identical.
  HashTupleBatch(stage, head_arity, n, ctx->head_hashes.data());
  size_t done = 0;
  while (done < n) {
    const size_t take = std::min<size_t>(
        n - done, static_cast<size_t>(std::max<long>(ctx->flush_countdown, 1)));
    const size_t added =
        out->InsertBatch(stage + done * static_cast<size_t>(head_arity), take,
                         ctx->head_hashes.data() + done, ctx->new_idx.data());
    ctx->new_tuples += static_cast<long>(added);
    ctx->unflushed_new += static_cast<long>(added);
    if (ctx->delta_out != nullptr) {
      for (size_t j = 0; j < added; ++j) {
        ctx->delta_out->Insert(stage + (done + ctx->new_idx[j]) *
                                           static_cast<size_t>(head_arity));
      }
    }
    ctx->emissions += static_cast<long>(take);
    ctx->unflushed_emissions += static_cast<long>(take);
    ctx->flush_countdown -= static_cast<long>(take);
    done += take;
    if (ctx->flush_countdown <= 0 && !FlushLimits(ctx)) return false;
  }
  return true;
}

void Evaluator::FlushBatchMetrics(JoinContext* ctx) {
  if (ctx->batch_rows_tally != 0) {
    batch_rows_.fetch_add(ctx->batch_rows_tally, std::memory_order_relaxed);
  }
  if (ctx->batch_probes_tally != 0) {
    batch_probes_.fetch_add(ctx->batch_probes_tally,
                            std::memory_order_relaxed);
  }
  if (MetricsRegistry* metrics = MetricsRegistry::Global()) {
    if (ctx->batch_rows_tally != 0) {
      metrics->Count("ndl/batch_rows", ctx->batch_rows_tally);
    }
    if (ctx->batch_probes_tally != 0) {
      metrics->Count("ndl/batch_probes", ctx->batch_probes_tally);
    }
    if (ctx->batch_cand_tally > 0) {
      metrics->Record("ndl/selection_density",
                      static_cast<double>(ctx->batch_out_tally) /
                          static_cast<double>(ctx->batch_cand_tally));
    }
  }
  ctx->batch_rows_tally = 0;
  ctx->batch_probes_tally = 0;
  ctx->batch_cand_tally = 0;
  ctx->batch_out_tally = 0;
}

void Evaluator::EvaluateClause(int ci, JoinContext* ctx, Rows* out) {
  if (aborted_.load(std::memory_order_relaxed)) return;
  const NdlClause& clause = program_.clause(ci);
  ClausePlan plan = BuildPlan(ci);
  // `plan` is a fresh stack object each call (its address can repeat), so
  // the scratch's plan-identity cache must not carry over.
  ctx->scratch_plan = nullptr;
  if (MetricsRegistry* metrics = MetricsRegistry::Global()) {
    ScopedSpan span(metrics, "evaluate/join");
    const long emitted0 = ctx->emissions;
    const long new0 = ctx->new_tuples;
    RunJoin(plan, ctx, out);
    const long emitted = ctx->emissions - emitted0;
    const long fresh = ctx->new_tuples - new0;
    span.Attr("head", clause.head.predicate);
    span.Attr("emissions", emitted);
    span.Attr("new_tuples", fresh);
    // Totals feed the dedup hit rate: new_tuples / join_emissions.
    metrics->Count("evaluator/join_emissions", emitted);
    metrics->Count("evaluator/new_tuples", fresh);
    metrics->Record("evaluator/clause_emissions",
                    static_cast<double>(emitted));
  } else {
    RunJoin(plan, ctx, out);
  }
}

bool Evaluator::Emit(const ClausePlan& plan, JoinContext* ctx, Rows* out) {
  const int* binding = ctx->binding.data();
  for (size_t i = 0; i < plan.head_code.size(); ++i) {
    int code = plan.head_code[i];
    ctx->head_tuple[i] = code >= 0 ? binding[code] : -code - 1;
  }
  if (out->Insert(ctx->head_tuple.data())) {
    ++ctx->new_tuples;
    ++ctx->unflushed_new;
    // Delta mode: a genuinely new tuple extends the head predicate's delta,
    // which drives the clauses downstream in the dependency DAG.
    if (ctx->delta_out != nullptr) {
      ctx->delta_out->Insert(ctx->head_tuple.data());
    }
  }
  ++ctx->emissions;
  ++ctx->unflushed_emissions;
  // The hot path touches no shared cache line; FlushLimits re-arms the
  // countdown so limits are still enforced on exactly the emission that
  // exceeds them.
  if (--ctx->flush_countdown <= 0) return FlushLimits(ctx);
  return true;
}

bool Evaluator::FlushLimits(JoinContext* ctx) {
  long work = work_.fetch_add(ctx->unflushed_emissions,
                              std::memory_order_relaxed) +
              ctx->unflushed_emissions;
  ctx->unflushed_emissions = 0;
  long tuples;
  if (ctx->unflushed_new != 0) {
    tuples = idb_tuples_.fetch_add(ctx->unflushed_new,
                                   std::memory_order_relaxed) +
             ctx->unflushed_new;
    ctx->unflushed_new = 0;
  } else {
    tuples = idb_tuples_.load(std::memory_order_relaxed);
  }
  if (limits_.max_work > 0 && work > limits_.max_work) {
    aborted_.store(true, std::memory_order_relaxed);
  }
  if (limits_.max_generated_tuples > 0 &&
      tuples > limits_.max_generated_tuples) {
    aborted_.store(true, std::memory_order_relaxed);
  }
  // Memory accounting and the cancel token ride the same flush cadence as
  // the deadline: charge this context's arena growth, then poll.
  if (ctx->out != nullptr) ChargeRowsDelta(*ctx->out, &ctx->charged_bytes);
  if (has_deadline_ || cancel_ != nullptr) AbortRequested();
  if (aborted_.load(std::memory_order_relaxed)) return false;
  // Re-arm: flush again no later than the emission that could exceed the
  // nearest limit (new tuples <= emissions, so an emission-based countdown
  // is a conservative bound for the tuple limit too), and at least every
  // kDeadlineCheckInterval emissions so deadline polls and cross-worker
  // aborts are observed promptly.
  long countdown = kDeadlineCheckInterval;
  if (limits_.max_work > 0) {
    countdown = std::min(countdown, limits_.max_work - work + 1);
  }
  if (limits_.max_generated_tuples > 0) {
    countdown =
        std::min(countdown, limits_.max_generated_tuples - tuples + 1);
  }
  ctx->flush_countdown = std::max<long>(countdown, 1);
  return true;
}

bool Evaluator::Join(const ClausePlan& plan, size_t next, JoinContext* ctx,
                     Rows* out) {
  if (next == plan.steps.size()) return Emit(plan, ctx, out);

  const AtomStep& step = plan.steps[next];
  const NdlAtom& atom = *step.atom;
  std::vector<int>& binding = ctx->binding;
  auto term_value = [&](const Term& t) {
    return t.is_constant ? t.value : binding[t.value];
  };

  if (step.kind == PredicateKind::kEquality) {
    int a = term_value(atom.args[0]);
    int b = term_value(atom.args[1]);
    if (a >= 0 && b >= 0) {
      if (a == b) return Join(plan, next + 1, ctx, out);
      return true;
    }
    if (a >= 0 || b >= 0) {
      int value = a >= 0 ? a : b;
      const Term& open = a >= 0 ? atom.args[1] : atom.args[0];
      binding[open.value] = value;
      bool keep_going = Join(plan, next + 1, ctx, out);
      binding[open.value] = -1;
      return keep_going;
    }
    // Both open: enumerate the active domain (rare; kept for completeness).
    for (int ind : ActiveDomain()) {
      binding[atom.args[0].value] = ind;
      binding[atom.args[1].value] = ind;
      bool keep_going = Join(plan, next + 1, ctx, out);
      binding[atom.args[0].value] = -1;
      binding[atom.args[1].value] = -1;
      if (!keep_going) return false;
    }
    return true;
  }

  if (step.kind == PredicateKind::kAdom) {
    int a = term_value(atom.args[0]);
    const std::vector<int>& adom = ActiveDomain();
    if (a >= 0) {
      if (std::binary_search(adom.begin(), adom.end(), a)) {
        return Join(plan, next + 1, ctx, out);
      }
      return true;
    }
    for (int ind : adom) {
      binding[atom.args[0].value] = ind;
      bool keep_going = Join(plan, next + 1, ctx, out);
      binding[atom.args[0].value] = -1;
      if (!keep_going) return false;
    }
    return true;
  }

  // Regular (IDB or EDB) atom: scan or probe, bind the open positions,
  // verify the checked positions against the candidate row.
  const Rows& rows = *step.rows;
  // On the last step a matching row goes straight to Emit; the extra
  // recursion level would only re-test `next == steps.size()` per candidate.
  const bool last = next + 1 == plan.steps.size();
  auto try_row = [&](const int* tuple) {
    for (const auto& [pos, var] : step.bind) {
      binding[var] = tuple[pos];
    }
    bool ok = true;
    for (const auto& [pos, code] : step.checks) {
      int value = code >= 0 ? binding[code] : -code - 1;
      if (value != tuple[pos]) {
        ok = false;
        break;
      }
    }
    bool keep_going =
        ok ? (last ? Emit(plan, ctx, out) : Join(plan, next + 1, ctx, out))
           : true;
    for (const auto& [pos, var] : step.bind) binding[var] = -1;
    return keep_going;
  };

  if (step.mask == 0) {
    size_t begin = 0;
    size_t end = rows.size();
    if (next == 0) {
      // The driver scan honours the context's row range (the whole relation
      // by default, one morsel under a fan-out).
      begin = ctx->driver_begin;
      end = std::min(end, ctx->driver_end);
    }
    for (size_t r = begin; r < end; ++r) {
      // One relaxed load per driver row keeps abort latency low even when a
      // long stretch of rows emits nothing (and so never reaches a flush).
      if (next == 0 && aborted_.load(std::memory_order_relaxed)) return false;
      if (!try_row(rows.row(r))) return false;
    }
    return true;
  }
  const HashIndex*& index = ctx->index[next];
  if (index == nullptr) {
    // Fetched lazily so clauses that fail before probing never build it;
    // cached in the (context-local) slot so each probe is one hash lookup.
    index = &GetIndex(atom.predicate, step.mask);
    // The build itself may have exhausted the deadline (leaving a partial
    // index); do not probe it in that case.
    if (aborted_.load(std::memory_order_relaxed)) return false;
  }
  // Key values on the stack for the common short keys (no vector size
  // bookkeeping per probe); the context buffer covers wide keys.
  int key_stack[8];
  const int* key;
  int key_len = static_cast<int>(step.key_code.size());
  if (key_len <= 8) {
    for (int i = 0; i < key_len; ++i) {
      int code = step.key_code[i];
      key_stack[i] = code >= 0 ? binding[code] : -code - 1;
    }
    key = key_stack;
  } else {
    ctx->key_buffer.clear();
    for (int code : step.key_code) {
      ctx->key_buffer.push_back(code >= 0 ? binding[code] : -code - 1);
    }
    key = ctx->key_buffer.data();
  }
  auto [first, end] = index->Find(HashTuple(key, key_len));
  for (; first != end; ++first) {
    if (first + 1 != end) {
      // Candidate rows land all over the arena; fetching the next one while
      // this one joins hides most of that latency.
      __builtin_prefetch(rows.row(first[1]));
    }
    if (!try_row(rows.row(*first))) return false;
  }
  return true;
}

// --- Dependency-DAG scheduler + intra-clause morsel parallelism ----------

namespace {

inline uint64_t PackRange(size_t begin, size_t end) {
  // Driver row ids fit 32 bits (the Rows arena caps at 2^32 - 2 rows).
  return (static_cast<uint64_t>(begin) << 32) | static_cast<uint64_t>(end);
}

}  // namespace

bool Evaluator::StealRange(MorselBatch* batch, size_t* begin, size_t* end) {
  const int n = static_cast<int>(batch->shards.size());
  while (!aborted_.load(std::memory_order_relaxed)) {
    // Pick the worker with the most driver rows left; a range is worth
    // splitting only when both halves keep at least one chunk.
    int victim = -1;
    uint64_t victim_range = 0;
    size_t best_left = 2 * batch->chunk_rows;
    for (int w = 0; w < n; ++w) {
      const uint64_t cur = batch->active[w].load(std::memory_order_acquire);
      const size_t b = cur >> 32;
      const size_t e = cur & 0xffffffffu;
      if (e > b && e - b >= best_left) {
        victim = w;
        victim_range = cur;
        best_left = e - b;
      }
    }
    if (victim < 0) return false;
    const size_t b = victim_range >> 32;
    const size_t e = victim_range & 0xffffffffu;
    const size_t mid = b + (e - b) / 2;
    if (batch->active[victim].compare_exchange_strong(
            victim_range, PackRange(b, mid), std::memory_order_acq_rel)) {
      *begin = mid;
      *end = e;
      batch->steals.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    // Lost the race (the victim advanced a chunk or another thief split
    // first); rescan — remaining ranges only ever shrink, so this loop
    // terminates.
  }
  return false;
}

void Evaluator::RunMorsels(MorselBatch* batch, int worker_id) {
  JoinContext ctx;
  Rows* shard = &batch->shards[worker_id];
  std::atomic<uint64_t>& mine = batch->active[worker_id];
  while (true) {
    size_t begin = batch->cursor.fetch_add(batch->rows_per_morsel,
                                           std::memory_order_relaxed);
    size_t end;
    if (begin < batch->driver_rows) {
      end = std::min(begin + batch->rows_per_morsel, batch->driver_rows);
    } else if (!StealRange(batch, &begin, &end)) {
      break;
    }
    morsels_.fetch_add(1, std::memory_order_relaxed);
    // Publish the owned range, then consume it chunk by chunk, advancing
    // `mine` by CAS — the same word thieves halve, so a chunk is joined by
    // exactly one worker.
    mine.store(PackRange(begin, end), std::memory_order_release);
    size_t processed = 0;
    while (true) {
      uint64_t cur = mine.load(std::memory_order_acquire);
      const size_t b = cur >> 32;
      const size_t e = cur & 0xffffffffu;
      if (b >= e) break;
      const size_t chunk_end = std::min(b + batch->chunk_rows, e);
      if (!mine.compare_exchange_weak(cur, PackRange(chunk_end, e),
                                      std::memory_order_acq_rel)) {
        continue;  // A thief halved the range; re-read.
      }
      ctx.driver_begin = b;
      ctx.driver_end = chunk_end;
      RunJoin(*batch->plan, &ctx, shard);
      processed += chunk_end - b;
    }
    mine.store(0, std::memory_order_release);
    // Settle the tallies into this worker's slot (single writer per slot)
    // BEFORE the rows_done release below: the owner sums the slots as soon
    // as the final release lands, so a write after it would race with that
    // read.
    batch->emissions[worker_id] += ctx.emissions;
    batch->new_tuples[worker_id] += ctx.new_tuples;
    ctx.emissions = 0;
    ctx.new_tuples = 0;
    const size_t done =
        batch->rows_done.fetch_add(processed, std::memory_order_acq_rel) +
        processed;
    if (done == batch->driver_rows) {
      // Lock/unlock pairs with the owner's predicate check so the final
      // notification cannot slip between its check and its wait.
      std::lock_guard<std::mutex> lock(batch->mu);
      batch->cv.notify_all();
    }
  }
}

long Evaluator::MergeShards(MorselBatch* batch, Rows* out) {
  long inserted = 0;
  long scanned = 0;
  size_t shard_rows = 0;
  for (const Rows& shard : batch->shards) shard_rows += shard.size();
  // Baseline before the Reserve: `out` was fully charged by the clause runs
  // that grew it, so this merge charges only its own delta.
  size_t charged = out->MemoryBytes();
  out->Reserve(out->size() + shard_rows);
  for (const Rows& shard : batch->shards) {
    for (size_t r = 0; r < shard.size(); ++r) {
      if (out->Insert(shard.row(r))) ++inserted;
      // A huge merge must honour the deadline / cancel / memory budget like
      // every other loop, and a merge that drives `out` into the 32-bit row
      // ceiling must stop instead of silently dropping rows (ChargeRowsDelta
      // folds the ceiling flag into the abort).  An aborted merge leaves the
      // relation partial, which is fine because aborted_ stops every
      // consumer before it trusts the results.
      if ((++scanned & (kDeadlineCheckInterval - 1)) == 0 &&
          (!ChargeRowsDelta(*out, &charged) || AbortRequested())) {
        return inserted;
      }
    }
  }
  ChargeRowsDelta(*out, &charged);
  return inserted;
}

void Evaluator::RunClauseFanOut(Scheduler* sched, const ClausePlan& plan,
                                int worker_id, int num_workers, Rows* out) {
  MorselBatch batch;
  batch.plan = &plan;
  batch.driver_rows = plan.steps[0].rows->size();
  batch.rows_per_morsel = static_cast<size_t>(limits_.morsel_rows);
  // Chunk granularity: one column batch on the batch path (a steal never
  // splits a batch mid-flight), an eighth of a morsel on the scalar path —
  // small enough that a straggler's remaining work is visible to thieves,
  // large enough that the CAS traffic stays negligible.
  batch.chunk_rows =
      limits_.batch_rows > 0
          ? std::min(batch.rows_per_morsel,
                     static_cast<size_t>(std::max<long>(limits_.batch_rows,
                                                        64)))
          : std::max<size_t>(batch.rows_per_morsel / 8, 64);
  batch.active = std::make_unique<std::atomic<uint64_t>[]>(num_workers);
  for (int w = 0; w < num_workers; ++w) {
    batch.active[w].store(0, std::memory_order_relaxed);
  }
  batch.shards.resize(num_workers);
  for (Rows& shard : batch.shards) shard.arity = out->arity;
  batch.emissions.assign(num_workers, 0);
  batch.new_tuples.assign(num_workers, 0);

  OWLQR_NAMED_SPAN(span, "evaluate/join");
  {
    std::lock_guard<std::mutex> lock(sched->mu);
    sched->batches.push_back(&batch);
  }
  sched->cv.notify_all();
  // The owner claims morsels alongside the helpers until the cursor is
  // exhausted ...
  RunMorsels(&batch, worker_id);
  {
    std::lock_guard<std::mutex> lock(sched->mu);
    auto it = std::find(sched->batches.begin(), sched->batches.end(), &batch);
    if (it != sched->batches.end()) sched->batches.erase(it);
  }
  // ... then waits for helpers still inside the batch — both those joining
  // their last range (rows_done) and those that entered only to find
  // nothing left to claim or steal (helpers).  The batch (and the plan it
  // points into) stays alive on this frame until no other worker can touch
  // it.
  {
    std::unique_lock<std::mutex> lock(batch.mu);
    batch.cv.wait(lock, [&batch] {
      return batch.rows_done.load(std::memory_order_acquire) ==
                 batch.driver_rows &&
             batch.helpers.load(std::memory_order_relaxed) == 0;
    });
  }
  // Single merge writer: only the owner touches the canonical Rows, so the
  // single-writer-per-relation invariant survives the fan-out.
  long inserted = MergeShards(&batch, out);
  // The shards die with this frame; give their bytes back.  Each shard was
  // fully charged by the RunJoin settles inside RunMorsels (charges are
  // recorded even past the limit), so the release is exact.
  if (account_ != nullptr) {
    size_t shard_bytes = 0;
    for (const Rows& shard : batch.shards) shard_bytes += shard.MemoryBytes();
    account_->Release(shard_bytes);
  }
  morsel_batches_.fetch_add(1, std::memory_order_relaxed);
  long emissions = 0;
  long shard_new = 0;
  for (long e : batch.emissions) emissions += e;
  for (long n : batch.new_tuples) shard_new += n;
  // Tuples new within a shard but duplicated across shards were counted by
  // Emit; settle idb_tuples_ to the canonical (merged) count.
  if (shard_new > inserted) {
    idb_tuples_.fetch_sub(shard_new - inserted, std::memory_order_relaxed);
  }
  const long steals = batch.steals.load(std::memory_order_relaxed);
  if (steals != 0) steals_.fetch_add(steals, std::memory_order_relaxed);
  span.Attr("head", plan.clause->head.predicate);
  span.Attr("emissions", emissions);
  span.Attr("new_tuples", inserted);
  span.Attr("steals", steals);
  OWLQR_COUNT("evaluator/join_emissions", emissions);
  OWLQR_COUNT("evaluator/new_tuples", inserted);
  OWLQR_RECORD("evaluator/clause_emissions", static_cast<double>(emissions));
}

void Evaluator::RunPredicateTask(Scheduler* sched, int predicate,
                                 int worker_id, int num_workers) {
  const bool metrics = OWLQR_METRICS_ENABLED();
  const auto task_start = std::chrono::steady_clock::now();
  Rows& out = preds_[predicate]->rows;
  // One context for every clause of the task: the batch scratch keeps its
  // capacity across plans, so only the first clause pays the allocations.
  JoinContext ctx;
  for (int ci : program_.ClausesFor(predicate)) {
    if (aborted_.load(std::memory_order_relaxed)) break;
    const NdlClause& clause = program_.clause(ci);
    ClausePlan plan = BuildPlan(ci);
    bool fan_out = false;
    if (limits_.morsel_rows > 0 && plan.splittable &&
        plan.steps[0].rows->size() >
            static_cast<size_t>(limits_.morsel_rows)) {
      // Split only when the ready queue would leave workers idle: either
      // some already block on the queue, or there are fewer ready tasks
      // than the other workers could drain.
      std::lock_guard<std::mutex> lock(sched->mu);
      fan_out = sched->idle > 0 ||
                sched->ready.size() + 1 < static_cast<size_t>(num_workers);
    }
    // `plan` is a fresh stack object each iteration (its address can
    // repeat), so the scratch's plan-identity cache must not carry over.
    ctx.scratch_plan = nullptr;
    if (fan_out) {
      RunClauseFanOut(sched, plan, worker_id, num_workers, &out);
    } else if (MetricsRegistry* registry = MetricsRegistry::Global()) {
      ScopedSpan span(registry, "evaluate/join");
      const long emitted0 = ctx.emissions;
      const long new0 = ctx.new_tuples;
      RunJoin(plan, &ctx, &out);
      const long emitted = ctx.emissions - emitted0;
      const long fresh = ctx.new_tuples - new0;
      span.Attr("head", clause.head.predicate);
      span.Attr("emissions", emitted);
      span.Attr("new_tuples", fresh);
      registry->Count("evaluator/join_emissions", emitted);
      registry->Count("evaluator/new_tuples", fresh);
      registry->Record("evaluator/clause_emissions",
                       static_cast<double>(emitted));
    } else {
      RunJoin(plan, &ctx, &out);
    }
  }
  out.materialized = true;
  scheduler_tasks_.fetch_add(1, std::memory_order_relaxed);
  double task_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - task_start)
                       .count();
  if (metrics) OWLQR_RECORD("evaluator/task_wall_ms", task_ms);

  // Finish the task: release dependents whose last dependency this was, and
  // wake everyone on the last task overall.
  std::vector<int> newly_ready;
  for (int q : sched->dependents[predicate]) {
    if (sched->remaining[q].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      newly_ready.push_back(q);
    }
  }
  bool done;
  {
    std::lock_guard<std::mutex> lock(sched->mu);
    slowest_task_ms_ = std::max(slowest_task_ms_, task_ms);
    for (int q : newly_ready) sched->ready.push_back(q);
    done = --sched->pending == 0;
    if (done) sched->done = true;
  }
  // Wake only as many workers as there is new work for; a notify_all here
  // stampedes every idle worker at once (they requeue on the mutex just to
  // find one task).  Completion still wakes everyone so all workers exit.
  if (done) {
    sched->cv.notify_all();
  } else if (newly_ready.size() == 1) {
    sched->cv.notify_one();
  } else if (!newly_ready.empty()) {
    sched->cv.notify_all();
  }
}

void Evaluator::SchedulerWorker(Scheduler* sched, int worker_id,
                                int num_workers) {
  std::unique_lock<std::mutex> lock(sched->mu);
  while (true) {
    if (!sched->ready.empty()) {
      int predicate = sched->ready.front();
      sched->ready.pop_front();
      lock.unlock();
      RunPredicateTask(sched, predicate, worker_id, num_workers);
      lock.lock();
      continue;
    }
    MorselBatch* batch = nullptr;
    while (!sched->batches.empty()) {
      MorselBatch* candidate = sched->batches.back();
      if (candidate->cursor.load(std::memory_order_relaxed) >=
          candidate->driver_rows) {
        // Cursor exhausted: the batch is still worth joining while some
        // worker's published range is large enough to steal from.  Once it
        // is not, it never will be again (ranges only shrink), so dropping
        // the batch here cannot strand work (the owner also erases on
        // completion).
        bool stealable = false;
        const int nw = static_cast<int>(candidate->shards.size());
        for (int w = 0; w < nw; ++w) {
          const uint64_t cur =
              candidate->active[w].load(std::memory_order_relaxed);
          const size_t b = cur >> 32;
          const size_t e = cur & 0xffffffffu;
          if (e > b && e - b >= 2 * candidate->chunk_rows) {
            stealable = true;
            break;
          }
        }
        if (!stealable) {
          sched->batches.pop_back();
          continue;
        }
      }
      batch = candidate;
      break;
    }
    if (batch != nullptr) {
      // Registered under sched->mu, before the batch pointer escapes this
      // critical section: the owner's completion wait includes `helpers`,
      // so the batch outlives even a helper that claims no morsel.
      batch->helpers.fetch_add(1, std::memory_order_relaxed);
      lock.unlock();
      RunMorsels(batch, worker_id);
      {
        std::lock_guard<std::mutex> batch_lock(batch->mu);
        batch->helpers.fetch_sub(1, std::memory_order_relaxed);
        batch->cv.notify_all();
      }
      lock.lock();
      continue;
    }
    if (sched->done) return;
    ++sched->idle;
    sched->cv.wait(lock);
    --sched->idle;
  }
}

// -------------------------------------------------------------------------

void Evaluator::FillStats(const std::vector<std::vector<int>>& answers,
                          EvaluationStats* stats) const {
  stats->generated_tuples = 0;
  stats->predicates_evaluated = 0;
  stats->aborted = aborted_.load();
  stats->deadline_exceeded = deadline_exceeded_.load();
  stats->cancelled = cancelled_.load();
  stats->memory_exceeded = memory_exceeded_.load();
  stats->row_ceiling = row_ceiling_.load();
  if (account_ != nullptr) {
    stats->memory_bytes = static_cast<long>(account_->used());
    stats->memory_high_water = static_cast<long>(account_->high_water());
  }
  stats->index_builds = index_builds_.load();
  stats->partial_edbs = 0;
  stats->predicate_tuples.assign(program_.num_predicates(), 0);
  for (int p = 0; p < program_.num_predicates(); ++p) {
    const Rows& rows = preds_[p]->rows;
    if (program_.IsIdb(p)) {
      if (rows.materialized) {
        long count = static_cast<long>(rows.size());
        stats->predicate_tuples[p] = count;
        stats->generated_tuples += count;
        ++stats->predicates_evaluated;
      }
    } else if (rows.partial) {
      ++stats->partial_edbs;
    }
  }
  stats->goal_tuples = static_cast<long>(answers.size());
  stats->scheduler_tasks = scheduler_tasks_.load();
  stats->morsel_batches = morsel_batches_.load();
  stats->morsels = morsels_.load();
  stats->slowest_task_ms = slowest_task_ms_;
  // Every driver row is joined exactly once regardless of worker count or
  // batching, so join_emissions is deterministic like generated_tuples.
  stats->join_emissions = work_.load();
  stats->batch_rows = batch_rows_.load();
  stats->batch_probes = batch_probes_.load();
  stats->steals = steals_.load();
}

ExecuteResult Evaluator::Run(const ExecuteRequest& request) {
  limits_ = request.limits;
  if (request.cancel != nullptr) cancel_ = request.cancel;
  ExecuteResult result;
  result.answers = request.num_threads > 1
                       ? EvaluateParallel(request.num_threads, &result.stats)
                       : Evaluate(&result.stats);
  if (snapshot_ != nullptr) result.snapshot_version = snapshot_->version();
  // Any abort leaves the answers a sound-but-possibly-incomplete subset.
  // Tuple/work-limit truncation is an *asked-for* stop, so it stays kOk
  // (partial says the rest); the status codes name the abort causes a
  // caller did not opt into, most specific first.
  result.partial = result.stats.aborted;
  if (result.stats.cancelled) {
    result.status = Status::Cancelled("execution cancelled");
  } else if (result.stats.memory_exceeded) {
    result.status = Status::MemoryExceeded("memory budget exceeded");
  } else if (result.stats.deadline_exceeded) {
    result.status = Status::DeadlineExceeded("deadline exceeded");
  }
  return result;
}

size_t ExecuteResult::MemoryBytes() const {
  size_t bytes = sizeof(ExecuteResult);
  bytes += answers.capacity() * sizeof(std::vector<int>);
  for (const std::vector<int>& tuple : answers) {
    bytes += tuple.capacity() * sizeof(int);
  }
  bytes += stats.predicate_tuples.capacity() * sizeof(long);
  bytes += status.message().capacity();
  return bytes;
}

size_t RetainedIdbState::MemoryBytes() const {
  size_t bytes = 0;
  for (const Rows& rows : idb_rows) bytes += rows.MemoryBytes();
  for (const auto& slot_map : slots) {
    for (const auto& [mask, slot] : slot_map) {
      (void)mask;
      if (slot != nullptr) bytes += slot->index.MemoryBytes();
    }
  }
  return bytes;
}

void Evaluator::ExtractRetainedState(RetainedIdbState* state) {
  const int n = program_.num_predicates();
  state->idb_rows.clear();
  state->idb_rows.resize(n);
  state->slots.clear();
  state->slots.resize(n);
  for (int p = 0; p < n; ++p) {
    if (!program_.IsIdb(p)) continue;
    state->idb_rows[p] = std::move(preds_[p]->rows);
    state->slots[p] = std::move(preds_[p]->slots);
  }
  state->version = snapshot_ != nullptr ? snapshot_->version() : 1;
}

ExecuteResult Evaluator::RunDelta(const ExecuteRequest& request,
                                  const SnapshotDelta& delta,
                                  RetainedIdbState* state) {
  OWLQR_CHECK_MSG(snapshot_ != nullptr, "RunDelta needs a snapshot backend");
  OWLQR_CHECK_MSG(program_.goal() >= 0, "program has no goal predicate");
  const int n = program_.num_predicates();
  OWLQR_CHECK_MSG(
      state->valid() && static_cast<int>(state->idb_rows.size()) == n &&
          static_cast<int>(state->slots.size()) == n,
      "retained state missing or sized for a different program");
  limits_ = request.limits;
  if (request.cancel != nullptr) cancel_ = request.cancel;

  OWLQR_NAMED_SPAN(span, "evaluate/delta");
  StartClock();

  // Adopt the retained extensions: they become this evaluator's IDB
  // relations, warm probe indexes included.  Their bytes stay charged to
  // the engine's retained-state cache, not to this execution's account —
  // the run below charges only its own growth.
  for (int p = 0; p < n; ++p) {
    if (!program_.IsIdb(p)) continue;
    preds_[p]->rows = std::move(state->idb_rows[p]);
    preds_[p]->slots = std::move(state->slots[p]);
  }
  state->Clear();

  // Seed the per-predicate delta relations: the appended EDB rows by
  // external id, plus synthetic adom/equality deltas over the individuals
  // that newly entered the active domain — a clause constant can newly
  // satisfy an adom or equality atom, so those atoms must be drivable too.
  // IDB deltas start empty and fill as the propagation emits.
  std::vector<Rows> delta_rows(n);
  std::vector<size_t> delta_charged(n, 0);
  size_t seed_rows = 0;
  for (int p = 0; p < n; ++p) {
    const PredicateInfo& info = program_.predicate(p);
    Rows& seeds = delta_rows[p];
    seeds.arity = info.arity;
    seeds.materialized = true;
    switch (info.kind) {
      case PredicateKind::kConceptEdb: {
        auto it = delta.concept_rows.find(info.external_id);
        if (it != delta.concept_rows.end()) {
          for (int a : it->second) seeds.Insert(&a);
        }
        break;
      }
      case PredicateKind::kRoleEdb: {
        auto it = delta.role_rows.find(info.external_id);
        if (it != delta.role_rows.end()) {
          const std::vector<int>& cells = it->second;
          for (size_t i = 0; i + 1 < cells.size(); i += 2) {
            seeds.Insert(&cells[i]);
          }
        }
        break;
      }
      case PredicateKind::kAdom:
        for (int a : delta.new_individuals) seeds.Insert(&a);
        break;
      case PredicateKind::kEquality:
        for (int a : delta.new_individuals) {
          int pair[2] = {a, a};
          seeds.Insert(pair);
        }
        break;
      default:
        break;  // IDB (fills below) or table EDB (immutable, never deltas).
    }
    seed_rows += seeds.size();
    delta_charged[p] = seeds.MemoryBytes();
    ChargeMemory(delta_charged[p]);
  }

  // Semi-naive propagation over the cached dependency DAG: for each
  // materialised IDB predicate in topological order, re-join every clause
  // once per body atom whose delta is non-empty, driven by that delta with
  // all other atoms against the full new extensions (sound and complete
  // for these monotone programs; dedup absorbs re-derivations).  New
  // tuples merge into the retained relation and extend the head's delta.
  long delta_derived = 0;
  // One context for the whole propagation: the batch scratch keeps its
  // capacity across the (many, mostly tiny) delta-driven plans.
  JoinContext ctx;
  for (int p : program_.CachedTopologicalOrder()) {
    if (aborted_.load(std::memory_order_relaxed)) break;
    Rows& full = preds_[p]->rows;
    // Outside the retained goal closure: the full run never materialised
    // it, so nothing downstream of the goal can read it.
    if (!full.materialized) continue;
    Rows* dout = &delta_rows[p];
    ctx.delta_out = dout;
    for (int ci : program_.ClausesFor(p)) {
      const NdlClause& clause = program_.clause(ci);
      for (size_t ai = 0; ai < clause.body.size(); ++ai) {
        if (aborted_.load(std::memory_order_relaxed)) break;
        if (delta_rows[clause.body[ai].predicate].size() == 0) continue;
        ClausePlan plan = BuildDeltaPlan(ci, static_cast<int>(ai), delta_rows);
        // Plans are per-iteration stack objects; see RunPredicateTask.
        ctx.scratch_plan = nullptr;
        if (MetricsRegistry* metrics = MetricsRegistry::Global()) {
          ScopedSpan join_span(metrics, "evaluate/join");
          const long emitted0 = ctx.emissions;
          const long new0 = ctx.new_tuples;
          RunJoin(plan, &ctx, &full);
          const long emitted = ctx.emissions - emitted0;
          const long fresh = ctx.new_tuples - new0;
          join_span.Attr("head", clause.head.predicate);
          join_span.Attr("emissions", emitted);
          join_span.Attr("new_tuples", fresh);
          join_span.Attr("delta_driven", 1);
          metrics->Count("evaluator/join_emissions", emitted);
          metrics->Count("evaluator/new_tuples", fresh);
        } else {
          RunJoin(plan, &ctx, &full);
        }
      }
    }
    ctx.delta_out = nullptr;
    if (dout->size() > 0) {
      // The predicate grew: its retained probe indexes went stale — drop
      // them before any downstream clause probes the merged relation (the
      // next GetIndex rebuilds under a fresh once_flag).
      preds_[p]->slots.clear();
      delta_derived += static_cast<long>(dout->size());
      ChargeRowsDelta(*dout, &delta_charged[p]);
    }
  }

  ExecuteResult result;
  result.answers = preds_[program_.goal()]->rows.ToSortedTuples();
  FillStats(result.answers, &result.stats);
  result.snapshot_version = snapshot_->version();
  result.incremental = true;
  result.partial = result.stats.aborted;
  if (result.stats.cancelled) {
    result.status = Status::Cancelled("execution cancelled");
  } else if (result.stats.memory_exceeded) {
    result.status = Status::MemoryExceeded("memory budget exceeded");
  } else if (result.stats.deadline_exceeded) {
    result.status = Status::DeadlineExceeded("deadline exceeded");
  }
  span.Attr("seed_rows", static_cast<long>(seed_rows));
  span.Attr("delta_derived", delta_derived);
  span.Attr("goal_tuples", static_cast<long>(result.answers.size()));
  span.Attr("aborted", result.stats.aborted ? 1 : 0);
  if (!result.stats.aborted) {
    // Hand the updated extensions back for the next delta; an aborted run
    // leaves `state` cleared and the caller falls back to full
    // re-evaluation (a partially merged relation is sound — monotone
    // additions only — but its version bookkeeping would be wrong).
    ExtractRetainedState(state);
  }
  return result;
}

std::vector<std::vector<int>> Evaluator::Evaluate(EvaluationStats* stats) {
  OWLQR_CHECK_MSG(program_.goal() >= 0, "program has no goal predicate");
  OWLQR_NAMED_SPAN(span, "evaluate");
  StartClock();
  {
    // Scoped so the batch scratch is released (and un-charged) before the
    // stats snapshot: final memory readings must reconcile to exactly the
    // retained arenas.
    JoinContext ctx;
    Materialize(program_.goal(), &ctx);
  }
  std::vector<std::vector<int>> answers =
      preds_[program_.goal()]->rows.ToSortedTuples();
  if (stats != nullptr) FillStats(answers, stats);
  span.Attr("goal_tuples", static_cast<long>(answers.size()));
  span.Attr("generated_tuples", idb_tuples_.load(std::memory_order_relaxed));
  span.Attr("aborted", aborted_.load() ? 1 : 0);
  return answers;
}

std::vector<std::vector<int>> Evaluator::Relation(int predicate) {
  {
    JoinContext ctx;
    Materialize(predicate, &ctx);
  }
  return preds_[predicate]->rows.ToTuples();
}

std::vector<std::vector<int>> Evaluator::EvaluateParallel(
    int num_threads, EvaluationStats* stats) {
  OWLQR_CHECK_MSG(program_.goal() >= 0, "program has no goal predicate");
  if (num_threads <= 1) return Evaluate(stats);
  OWLQR_NAMED_SPAN(span, "evaluate/parallel");
  span.Attr("threads", num_threads);
  StartClock();

  // IDB predicates the goal depends on, over the program's cached
  // dependency adjacency (a flat seen-array; no per-call tree allocations).
  const std::vector<std::vector<int>>& deps = program_.IdbDependencies();
  std::vector<char> reachable(program_.num_predicates(), 0);
  reachable[program_.goal()] = 1;
  std::vector<int> stack = {program_.goal()};
  while (!stack.empty()) {
    int p = stack.back();
    stack.pop_back();
    for (int q : deps[p]) {
      if (!reachable[q]) {
        reachable[q] = 1;
        stack.push_back(q);
      }
    }
  }
  // Freeze everything workers may read lazily: the program's clause index
  // (any ClausesFor call builds all of it; concurrent first calls from
  // worker tasks would race), the active domain (used by equality and adom
  // atoms), and every EDB relation of any kind, including table EDBs from
  // the mapping layer.
  program_.ClausesFor(program_.goal());
  ActiveDomain();
  for (const NdlClause& clause : program_.clauses()) {
    for (const NdlAtom& atom : clause.body) {
      PredicateKind kind = program_.predicate(atom.predicate).kind;
      if (kind == PredicateKind::kConceptEdb ||
          kind == PredicateKind::kRoleEdb ||
          kind == PredicateKind::kTableEdb || kind == PredicateKind::kAdom) {
        EdbRows(atom.predicate);
      }
    }
  }

  // Build the task DAG: one task per reachable unmaterialised IDB
  // predicate, an atomic remaining-dependency counter each, and reverse
  // edges so a finishing task can release its dependents.
  Scheduler sched;
  const int n = program_.num_predicates();
  sched.remaining = std::make_unique<std::atomic<int>[]>(n);
  sched.dependents.assign(n, {});
  std::vector<char> is_task(n, 0);
  std::vector<int> tasks;
  for (int p = 0; p < n; ++p) {
    sched.remaining[p].store(0, std::memory_order_relaxed);
    if (reachable[p] && program_.IsIdb(p) && !preds_[p]->rows.materialized) {
      is_task[p] = 1;
      tasks.push_back(p);
    }
  }
  for (int p : tasks) {
    int need = 0;
    for (int q : deps[p]) {
      if (is_task[q]) {
        ++need;
        sched.dependents[q].push_back(p);
      }
    }
    sched.remaining[p].store(need, std::memory_order_relaxed);
    if (need == 0) sched.ready.push_back(p);
  }
  sched.pending = static_cast<int>(tasks.size());
  sched.done = tasks.empty();

  // CPU-bound workers beyond the core count only add context-switch and
  // wakeup overhead, so cap the pool at the hardware concurrency (floor 2:
  // a parallel run stays genuinely concurrent even on one core, e.g. for
  // the sanitizer tests).  Counters and results are worker-count agnostic.
  int num_workers = num_threads;
  unsigned hardware = std::thread::hardware_concurrency();
  if (hardware > 0) {
    num_workers =
        std::min(num_threads, std::max(2, static_cast<int>(hardware)));
  }
  span.Attr("workers", num_workers);

  if (!tasks.empty()) {
    std::vector<std::thread> threads;
    threads.reserve(num_workers);
    for (int t = 0; t < num_workers; ++t) {
      threads.emplace_back(
          [this, &sched, t, num_workers] {
            SchedulerWorker(&sched, t, num_workers);
          });
    }
    for (std::thread& t : threads) t.join();
  }

  std::vector<std::vector<int>> answers =
      preds_[program_.goal()]->rows.ToSortedTuples();
  if (stats != nullptr) FillStats(answers, stats);
  span.Attr("goal_tuples", static_cast<long>(answers.size()));
  span.Attr("generated_tuples", idb_tuples_.load(std::memory_order_relaxed));
  span.Attr("aborted", aborted_.load() ? 1 : 0);
  span.Attr("tasks", scheduler_tasks_.load(std::memory_order_relaxed));
  span.Attr("morsel_batches",
            morsel_batches_.load(std::memory_order_relaxed));
  span.Attr("morsels", morsels_.load(std::memory_order_relaxed));
  return answers;
}

}  // namespace owlqr
