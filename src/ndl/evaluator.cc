#include "ndl/evaluator.h"

#include <algorithm>
#include <set>
#include <thread>

#include "util/logging.h"

namespace owlqr {

namespace {

constexpr size_t kHashSeed = 0x9e3779b97f4a7c15ULL;

size_t Mix(size_t h, size_t v) {
  h ^= v + kHashSeed + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

size_t Evaluator::HashTuple(const std::vector<int>& tuple) {
  size_t h = 1469598103934665603ULL;
  for (int v : tuple) h = Mix(h, static_cast<size_t>(v) + 1);
  return h;
}

size_t Evaluator::HashKey(const std::vector<int>& key) { return HashTuple(key); }

bool Evaluator::Rows::Insert(const std::vector<int>& tuple) {
  size_t h = HashTuple(tuple);
  std::vector<int>& bucket = buckets[h];
  for (int row : bucket) {
    if (tuples[row] == tuple) return false;
  }
  bucket.push_back(static_cast<int>(tuples.size()));
  tuples.push_back(tuple);
  return true;
}

Evaluator::Evaluator(const NdlProgram& program, const DataInstance& data,
                     const EvaluatorLimits& limits)
    : program_(program), data_(data), limits_(limits) {
  OWLQR_CHECK_MSG(program.IsNonrecursive(), "program must be nonrecursive");
  relations_.resize(program.num_predicates());
}

Evaluator::Evaluator(const NdlProgram& program, const DataInstance& data,
                     const TableStore& tables, const EvaluatorLimits& limits)
    : program_(program), data_(data), tables_(&tables), limits_(limits) {
  OWLQR_CHECK_MSG(program.IsNonrecursive(), "program must be nonrecursive");
  relations_.resize(program.num_predicates());
}

const std::vector<int>& Evaluator::ActiveDomain() {
  if (!active_domain_computed_) {
    active_domain_ = data_.individuals();
    if (tables_ != nullptr) {
      for (int ind : tables_->ActiveDomain()) active_domain_.push_back(ind);
      std::sort(active_domain_.begin(), active_domain_.end());
      active_domain_.erase(
          std::unique(active_domain_.begin(), active_domain_.end()),
          active_domain_.end());
    }
    active_domain_computed_ = true;
  }
  return active_domain_;
}

const Evaluator::Rows& Evaluator::EdbRows(int predicate) {
  Rows& rows = relations_[predicate];
  if (rows.materialized) return rows;
  const PredicateInfo& info = program_.predicate(predicate);
  switch (info.kind) {
    case PredicateKind::kConceptEdb:
      for (int a : data_.ConceptMembers(info.external_id)) {
        rows.Insert({a});
      }
      break;
    case PredicateKind::kRoleEdb:
      for (auto [a, b] : data_.RolePairs(info.external_id)) {
        rows.Insert({a, b});
      }
      break;
    case PredicateKind::kTableEdb:
      OWLQR_CHECK_MSG(tables_ != nullptr,
                      "program uses table predicates but no TableStore given");
      for (const std::vector<int>& row : tables_->Rows(info.external_id)) {
        rows.Insert(row);
      }
      break;
    case PredicateKind::kAdom:
      for (int a : ActiveDomain()) rows.Insert({a});
      break;
    default:
      OWLQR_CHECK_MSG(false, "EdbRows on IDB/equality predicate");
  }
  rows.materialized = true;
  return rows;
}

const Evaluator::Index& Evaluator::GetIndex(int predicate, unsigned mask) {
  std::lock_guard<std::mutex> lock(index_mutex_);
  auto key = std::make_pair(predicate, mask);
  auto it = indexes_.find(key);
  if (it != indexes_.end()) return it->second;
  const Rows& rows = program_.IsIdb(predicate) ? relations_[predicate]
                                               : EdbRows(predicate);
  Index index;
  std::vector<int> key_values;
  for (size_t row = 0; row < rows.tuples.size(); ++row) {
    key_values.clear();
    const std::vector<int>& tuple = rows.tuples[row];
    for (size_t i = 0; i < tuple.size(); ++i) {
      if (mask & (1u << i)) key_values.push_back(tuple[i]);
    }
    index[HashKey(key_values)].push_back(static_cast<int>(row));
  }
  return indexes_.emplace(key, std::move(index)).first->second;
}

void Evaluator::Materialize(int predicate) {
  Rows& rows = relations_[predicate];
  if (rows.materialized) return;
  if (!program_.IsIdb(predicate)) {
    EdbRows(predicate);
    return;
  }
  // Materialise dependencies first (the program is acyclic).
  for (int ci : program_.ClausesFor(predicate)) {
    for (const NdlAtom& atom : program_.clause(ci).body) {
      if (program_.IsIdb(atom.predicate) && atom.predicate != predicate) {
        Materialize(atom.predicate);
      }
    }
  }
  for (int ci : program_.ClausesFor(predicate)) {
    EvaluateClause(program_.clause(ci), &rows);
  }
  rows.materialized = true;
}

void Evaluator::EvaluateClause(const NdlClause& clause, Rows* out) {
  // Static greedy atom order: simulate which variables become bound.
  std::vector<bool> used(clause.body.size(), false);
  std::vector<bool> bound;
  auto var_bound = [&bound](const Term& t) {
    return t.is_constant ||
           (t.value < static_cast<int>(bound.size()) && bound[t.value]);
  };
  int num_vars = 0;
  for (const NdlAtom& atom : clause.body) {
    for (const Term& t : atom.args) {
      if (!t.is_constant) num_vars = std::max(num_vars, t.value + 1);
    }
  }
  for (const Term& t : clause.head.args) {
    if (!t.is_constant) num_vars = std::max(num_vars, t.value + 1);
  }
  bound.assign(num_vars, false);

  std::vector<int> order;
  for (size_t step = 0; step < clause.body.size(); ++step) {
    int best = -1;
    double best_score = 0;
    for (size_t i = 0; i < clause.body.size(); ++i) {
      if (used[i]) continue;
      const NdlAtom& atom = clause.body[i];
      const PredicateKind kind = program_.predicate(atom.predicate).kind;
      int bound_args = 0;
      for (const Term& t : atom.args) {
        if (var_bound(t)) ++bound_args;
      }
      bool all_bound = bound_args == static_cast<int>(atom.args.size());
      double score;
      if (kind == PredicateKind::kEquality) {
        score = bound_args >= 1 ? 1e9 : -2e9;
      } else if (kind == PredicateKind::kAdom) {
        score = all_bound ? 1e8 : -1e9;
      } else {
        size_t size = program_.IsIdb(atom.predicate)
                          ? relations_[atom.predicate].tuples.size()
                          : EdbRows(atom.predicate).tuples.size();
        score = 1e6 * bound_args + (all_bound ? 5e8 : 0) -
                static_cast<double>(size) * 1e-3;
      }
      if (best < 0 || score > best_score) {
        best = static_cast<int>(i);
        best_score = score;
      }
    }
    used[best] = true;
    order.push_back(best);
    for (const Term& t : clause.body[best].args) {
      if (!t.is_constant) bound[t.value] = true;
    }
  }

  std::vector<int> binding(num_vars, -1);
  Join(clause, order, 0, &binding, out);
}

void Evaluator::Join(const NdlClause& clause, const std::vector<int>& order,
                     size_t next, std::vector<int>* binding, Rows* out) {
  if (aborted_.load(std::memory_order_relaxed)) return;
  if (next == order.size()) {
    std::vector<int> tuple;
    tuple.reserve(clause.head.args.size());
    for (const Term& t : clause.head.args) {
      if (t.is_constant) {
        tuple.push_back(t.value);
      } else {
        OWLQR_CHECK_MSG((*binding)[t.value] >= 0, "unsafe clause head");
        tuple.push_back((*binding)[t.value]);
      }
    }
    if (out->Insert(tuple)) {
      long tuples = idb_tuples_.fetch_add(1, std::memory_order_relaxed) + 1;
      if (limits_.max_generated_tuples > 0 &&
          tuples > limits_.max_generated_tuples) {
        aborted_.store(true, std::memory_order_relaxed);
      }
    }
    long work = work_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (limits_.max_work > 0 && work > limits_.max_work) {
      aborted_.store(true, std::memory_order_relaxed);
    }
    return;
  }

  const NdlAtom& atom = clause.body[order[next]];
  const PredicateKind kind = program_.predicate(atom.predicate).kind;
  auto term_value = [&](const Term& t) {
    return t.is_constant ? t.value : (*binding)[t.value];
  };

  if (kind == PredicateKind::kEquality) {
    int a = term_value(atom.args[0]);
    int b = term_value(atom.args[1]);
    if (a >= 0 && b >= 0) {
      if (a == b) Join(clause, order, next + 1, binding, out);
      return;
    }
    if (a >= 0 || b >= 0) {
      int value = a >= 0 ? a : b;
      const Term& open = a >= 0 ? atom.args[1] : atom.args[0];
      (*binding)[open.value] = value;
      Join(clause, order, next + 1, binding, out);
      (*binding)[open.value] = -1;
      return;
    }
    // Both open: enumerate the active domain (rare; kept for completeness).
    for (int ind : ActiveDomain()) {
      (*binding)[atom.args[0].value] = ind;
      (*binding)[atom.args[1].value] = ind;
      Join(clause, order, next + 1, binding, out);
      (*binding)[atom.args[0].value] = -1;
      (*binding)[atom.args[1].value] = -1;
    }
    return;
  }

  if (kind == PredicateKind::kAdom) {
    int a = term_value(atom.args[0]);
    const std::vector<int>& adom = ActiveDomain();
    if (a >= 0) {
      if (std::binary_search(adom.begin(), adom.end(), a)) {
        Join(clause, order, next + 1, binding, out);
      }
      return;
    }
    for (int ind : adom) {
      (*binding)[atom.args[0].value] = ind;
      Join(clause, order, next + 1, binding, out);
      (*binding)[atom.args[0].value] = -1;
    }
    return;
  }

  // Regular (IDB or EDB) atom.
  const Rows& rows = program_.IsIdb(atom.predicate)
                         ? relations_[atom.predicate]
                         : EdbRows(atom.predicate);
  unsigned mask = 0;
  std::vector<int> key;
  for (size_t i = 0; i < atom.args.size(); ++i) {
    int v = term_value(atom.args[i]);
    if (v >= 0) {
      mask |= (1u << i);
      key.push_back(v);
    }
  }

  auto try_row = [&](const std::vector<int>& tuple) {
    std::vector<int> newly_bound;
    bool ok = true;
    for (size_t i = 0; i < atom.args.size() && ok; ++i) {
      const Term& t = atom.args[i];
      int current = term_value(t);
      if (current >= 0) {
        ok = current == tuple[i];
      } else {
        (*binding)[t.value] = tuple[i];
        newly_bound.push_back(t.value);
      }
    }
    if (ok) Join(clause, order, next + 1, binding, out);
    for (int v : newly_bound) (*binding)[v] = -1;
  };

  if (mask == 0) {
    for (const std::vector<int>& tuple : rows.tuples) try_row(tuple);
    return;
  }
  const Index& index = GetIndex(atom.predicate, mask);
  auto it = index.find(HashKey(key));
  if (it == index.end()) return;
  for (int row : it->second) try_row(rows.tuples[row]);
}

std::vector<std::vector<int>> Evaluator::Evaluate(EvaluationStats* stats) {
  OWLQR_CHECK_MSG(program_.goal() >= 0, "program has no goal predicate");
  Materialize(program_.goal());
  std::vector<std::vector<int>> answers = relations_[program_.goal()].tuples;
  std::sort(answers.begin(), answers.end());
  if (stats != nullptr) {
    stats->generated_tuples = 0;
    stats->predicates_evaluated = 0;
    stats->aborted = aborted_.load();
    for (int p = 0; p < program_.num_predicates(); ++p) {
      if (program_.IsIdb(p) && relations_[p].materialized) {
        stats->generated_tuples +=
            static_cast<long>(relations_[p].tuples.size());
        ++stats->predicates_evaluated;
      }
    }
    stats->goal_tuples = static_cast<long>(answers.size());
  }
  return answers;
}

const std::vector<std::vector<int>>& Evaluator::Relation(int predicate) {
  Materialize(predicate);
  return relations_[predicate].tuples;
}

std::vector<std::vector<int>> Evaluator::EvaluateParallel(
    int num_threads, EvaluationStats* stats) {
  OWLQR_CHECK_MSG(program_.goal() >= 0, "program has no goal predicate");
  if (num_threads <= 1) return Evaluate(stats);

  // Predicates the goal depends on.
  std::set<int> reachable = {program_.goal()};
  std::vector<int> stack = {program_.goal()};
  while (!stack.empty()) {
    int p = stack.back();
    stack.pop_back();
    for (int ci : program_.ClausesFor(p)) {
      for (const NdlAtom& atom : program_.clause(ci).body) {
        if (program_.IsIdb(atom.predicate) &&
            reachable.insert(atom.predicate).second) {
          stack.push_back(atom.predicate);
        }
      }
    }
  }
  // Pre-materialise every EDB relation the program touches (serially), so
  // worker threads only read them.
  for (const NdlClause& clause : program_.clauses()) {
    for (const NdlAtom& atom : clause.body) {
      PredicateKind kind = program_.predicate(atom.predicate).kind;
      if (kind == PredicateKind::kConceptEdb ||
          kind == PredicateKind::kRoleEdb || kind == PredicateKind::kAdom) {
        EdbRows(atom.predicate);
      }
    }
  }
  for (const std::vector<int>& level : program_.TopologicalLevels()) {
    std::vector<int> todo;
    for (int p : level) {
      if (reachable.count(p) > 0 && !relations_[p].materialized) {
        todo.push_back(p);
      }
    }
    if (todo.empty()) continue;
    int workers = std::min<int>(num_threads, static_cast<int>(todo.size()));
    std::atomic<size_t> next{0};
    auto work = [&] {
      while (true) {
        size_t i = next.fetch_add(1);
        if (i >= todo.size()) return;
        int p = todo[i];
        for (int ci : program_.ClausesFor(p)) {
          EvaluateClause(program_.clause(ci), &relations_[p]);
        }
        relations_[p].materialized = true;
      }
    };
    std::vector<std::thread> threads;
    for (int t = 0; t < workers; ++t) threads.emplace_back(work);
    for (std::thread& t : threads) t.join();
  }

  std::vector<std::vector<int>> answers = relations_[program_.goal()].tuples;
  std::sort(answers.begin(), answers.end());
  if (stats != nullptr) {
    stats->generated_tuples = 0;
    stats->predicates_evaluated = 0;
    stats->aborted = aborted_.load();
    for (int p = 0; p < program_.num_predicates(); ++p) {
      if (program_.IsIdb(p) && relations_[p].materialized) {
        stats->generated_tuples +=
            static_cast<long>(relations_[p].tuples.size());
        ++stats->predicates_evaluated;
      }
    }
    stats->goal_tuples = static_cast<long>(answers.size());
  }
  return answers;
}

}  // namespace owlqr
