#include "ndl/program.h"

#include <algorithm>
#include <functional>
#include <set>

#include "util/logging.h"

namespace owlqr {

int NdlClause::NumVariables() const {
  std::set<int> vars;
  auto collect = [&vars](const NdlAtom& atom) {
    for (const Term& t : atom.args) {
      if (!t.is_constant) vars.insert(t.value);
    }
  };
  collect(head);
  for (const NdlAtom& atom : body) collect(atom);
  return static_cast<int>(vars.size());
}

NdlProgram::NdlProgram(Vocabulary* vocabulary) : vocabulary_(vocabulary) {}

int NdlProgram::AddIdbPredicate(const std::string& name, int arity) {
  auto it = predicate_by_name_.find(name);
  if (it != predicate_by_name_.end()) {
    OWLQR_CHECK_MSG(predicates_[it->second].arity == arity,
                    "predicate re-declared with different arity");
    return it->second;
  }
  PredicateInfo info;
  info.name = name;
  info.arity = arity;
  info.kind = PredicateKind::kIdb;
  predicates_.push_back(std::move(info));
  int id = num_predicates() - 1;
  predicate_by_name_.emplace(name, id);
  return id;
}

int NdlProgram::AddConceptPredicate(int concept_id) {
  auto it = concept_edb_.find(concept_id);
  if (it != concept_edb_.end()) return it->second;
  PredicateInfo info;
  info.name = vocabulary_->ConceptName(concept_id);
  info.arity = 1;
  info.kind = PredicateKind::kConceptEdb;
  info.external_id = concept_id;
  predicates_.push_back(std::move(info));
  int id = num_predicates() - 1;
  concept_edb_.emplace(concept_id, id);
  return id;
}

int NdlProgram::AddRolePredicate(int predicate_id) {
  auto it = role_edb_.find(predicate_id);
  if (it != role_edb_.end()) return it->second;
  PredicateInfo info;
  info.name = vocabulary_->PredicateName(predicate_id);
  info.arity = 2;
  info.kind = PredicateKind::kRoleEdb;
  info.external_id = predicate_id;
  predicates_.push_back(std::move(info));
  int id = num_predicates() - 1;
  role_edb_.emplace(predicate_id, id);
  return id;
}

int NdlProgram::AddTablePredicate(const std::string& name, int arity,
                                  int table_id) {
  auto it = table_edb_.find(table_id);
  if (it != table_edb_.end()) return it->second;
  PredicateInfo info;
  info.name = name;
  info.arity = arity;
  info.kind = PredicateKind::kTableEdb;
  info.external_id = table_id;
  predicates_.push_back(std::move(info));
  int id = num_predicates() - 1;
  table_edb_.emplace(table_id, id);
  return id;
}

int NdlProgram::EqualityPredicate() {
  if (equality_ < 0) {
    PredicateInfo info;
    info.name = "=";
    info.arity = 2;
    info.kind = PredicateKind::kEquality;
    predicates_.push_back(std::move(info));
    equality_ = num_predicates() - 1;
  }
  return equality_;
}

int NdlProgram::AdomPredicate() {
  if (adom_ < 0) {
    PredicateInfo info;
    info.name = "TOP";
    info.arity = 1;
    info.kind = PredicateKind::kAdom;
    predicates_.push_back(std::move(info));
    adom_ = num_predicates() - 1;
  }
  return adom_;
}

void NdlProgram::AddClause(NdlClause clause) {
  OWLQR_CHECK(clause.head.predicate >= 0 &&
              clause.head.predicate < num_predicates());
  OWLQR_CHECK_MSG(IsIdb(clause.head.predicate),
                  "clause heads must be IDB predicates");
  OWLQR_CHECK(static_cast<int>(clause.head.args.size()) ==
              predicates_[clause.head.predicate].arity);
  for (const NdlAtom& atom : clause.body) {
    OWLQR_CHECK(atom.predicate >= 0 && atom.predicate < num_predicates());
    OWLQR_CHECK(static_cast<int>(atom.args.size()) ==
                predicates_[atom.predicate].arity);
  }
  clauses_.push_back(std::move(clause));
  InvalidateAnalyses();
}

const std::vector<int>& NdlProgram::ClausesFor(int p) const {
  BuildClauseIndex();
  return clauses_for_[p];
}

void NdlProgram::ReplaceClauses(std::vector<NdlClause> clauses) {
  clauses_ = std::move(clauses);
  InvalidateAnalyses();
}

void NdlProgram::InvalidateAnalyses() {
  clause_index_valid_ = false;
  topo_order_valid_ = false;
  idb_deps_valid_ = false;
}

void NdlProgram::BuildClauseIndex() const {
  if (clause_index_valid_) return;
  clauses_for_.assign(num_predicates(), {});
  for (int i = 0; i < num_clauses(); ++i) {
    clauses_for_[clauses_[i].head.predicate].push_back(i);
  }
  clause_index_valid_ = true;
}

std::vector<std::vector<int>> NdlProgram::DependenceGraph() const {
  std::vector<std::vector<int>> dep(num_predicates());
  for (const NdlClause& clause : clauses_) {
    for (const NdlAtom& atom : clause.body) {
      dep[clause.head.predicate].push_back(atom.predicate);
    }
  }
  for (std::vector<int>& d : dep) {
    std::sort(d.begin(), d.end());
    d.erase(std::unique(d.begin(), d.end()), d.end());
  }
  return dep;
}

bool NdlProgram::IsNonrecursive() const {
  std::vector<std::vector<int>> dep = DependenceGraph();
  std::vector<int> color(num_predicates(), 0);
  bool cyclic = false;
  std::function<void(int)> dfs = [&](int p) {
    if (cyclic) return;
    color[p] = 1;
    for (int q : dep[p]) {
      if (color[q] == 1) {
        cyclic = true;
        return;
      }
      if (color[q] == 0) dfs(q);
    }
    color[p] = 2;
  };
  for (int p = 0; p < num_predicates() && !cyclic; ++p) {
    if (color[p] == 0) dfs(p);
  }
  return !cyclic;
}

std::vector<int> NdlProgram::TopologicalOrder() const {
  std::vector<std::vector<int>> dep = DependenceGraph();
  std::vector<int> order;
  std::vector<int> color(num_predicates(), 0);
  std::function<void(int)> dfs = [&](int p) {
    color[p] = 1;
    for (int q : dep[p]) {
      OWLQR_CHECK_MSG(color[q] != 1, "program is recursive");
      if (color[q] == 0) dfs(q);
    }
    color[p] = 2;
    if (IsIdb(p)) order.push_back(p);
  };
  for (int p = 0; p < num_predicates(); ++p) {
    if (color[p] == 0) dfs(p);
  }
  return order;
}

const std::vector<int>& NdlProgram::CachedTopologicalOrder() const {
  if (!topo_order_valid_) {
    topo_order_ = TopologicalOrder();
    topo_order_valid_ = true;
  }
  return topo_order_;
}

const std::vector<std::vector<int>>& NdlProgram::IdbDependencies() const {
  if (!idb_deps_valid_) {
    idb_deps_.assign(num_predicates(), {});
    for (const NdlClause& clause : clauses_) {
      for (const NdlAtom& atom : clause.body) {
        if (IsIdb(atom.predicate) &&
            atom.predicate != clause.head.predicate) {
          idb_deps_[clause.head.predicate].push_back(atom.predicate);
        }
      }
    }
    for (std::vector<int>& d : idb_deps_) {
      std::sort(d.begin(), d.end());
      d.erase(std::unique(d.begin(), d.end()), d.end());
    }
    idb_deps_valid_ = true;
  }
  return idb_deps_;
}

std::vector<std::vector<int>> NdlProgram::TopologicalLevels() const {
  const std::vector<int>& order = CachedTopologicalOrder();
  std::vector<int> level(num_predicates(), 0);
  int max_level = -1;
  std::vector<std::vector<int>> levels;
  for (int p : order) {
    int mine = 0;
    for (int ci : ClausesFor(p)) {
      for (const NdlAtom& atom : clauses_[ci].body) {
        if (IsIdb(atom.predicate) && atom.predicate != p) {
          mine = std::max(mine, level[atom.predicate] + 1);
        }
      }
    }
    level[p] = mine;
    while (max_level < mine) {
      levels.emplace_back();
      ++max_level;
    }
    levels[mine].push_back(p);
  }
  return levels;
}

int NdlProgram::Depth() const {
  if (goal_ < 0) return 0;
  std::vector<std::vector<int>> dep = DependenceGraph();
  std::vector<int> depth(num_predicates(), -1);
  std::function<int(int)> dfs = [&](int p) -> int {
    if (depth[p] >= 0) return depth[p];
    depth[p] = 0;  // EDB predicates and leaves.
    int best = 0;
    for (int q : dep[p]) best = std::max(best, 1 + dfs(q));
    depth[p] = best;
    return best;
  };
  return dfs(goal_);
}

bool NdlProgram::IsLinear() const {
  for (const NdlClause& clause : clauses_) {
    int idb_atoms = 0;
    for (const NdlAtom& atom : clause.body) {
      if (IsIdb(atom.predicate)) ++idb_atoms;
    }
    if (idb_atoms > 1) return false;
  }
  return true;
}

bool NdlProgram::IsSkinny() const {
  for (const NdlClause& clause : clauses_) {
    if (clause.body.size() > 2) return false;
  }
  return true;
}

int NdlProgram::MaxEdbAtomsPerClause() const {
  int best = 0;
  for (const NdlClause& clause : clauses_) {
    int edb = 0;
    for (const NdlAtom& atom : clause.body) {
      if (!IsIdb(atom.predicate)) ++edb;
    }
    best = std::max(best, edb);
  }
  return best;
}

int NdlProgram::Width() const {
  int width = 0;
  for (const NdlClause& clause : clauses_) {
    std::set<int> parameter_vars;
    std::set<int> all_vars;
    auto scan = [&](const NdlAtom& atom) {
      const std::vector<bool>& params =
          predicates_[atom.predicate].parameter_positions;
      for (size_t i = 0; i < atom.args.size(); ++i) {
        if (atom.args[i].is_constant) continue;
        all_vars.insert(atom.args[i].value);
        if (i < params.size() && params[i]) {
          parameter_vars.insert(atom.args[i].value);
        }
      }
    };
    scan(clause.head);
    for (const NdlAtom& atom : clause.body) scan(atom);
    int non_params = 0;
    for (int v : all_vars) {
      if (parameter_vars.count(v) == 0) ++non_params;
    }
    width = std::max(width, non_params);
  }
  return width;
}

long NdlProgram::SizeInSymbols() const {
  long size = 0;
  for (const NdlClause& clause : clauses_) {
    size += 1 + static_cast<long>(clause.head.args.size());
    for (const NdlAtom& atom : clause.body) {
      size += 1 + static_cast<long>(atom.args.size());
    }
  }
  return size;
}

std::string NdlProgram::AtomToString(const NdlAtom& atom) const {
  std::string out = predicates_[atom.predicate].name + "(";
  for (size_t i = 0; i < atom.args.size(); ++i) {
    if (i > 0) out += ", ";
    if (atom.args[i].is_constant) {
      out += vocabulary_->IndividualName(atom.args[i].value);
    } else {
      out += "v" + std::to_string(atom.args[i].value);
    }
  }
  out += ")";
  return out;
}

std::string NdlProgram::ToString() const {
  std::string out;
  if (goal_ >= 0) {
    out += "goal: " + predicates_[goal_].name + "\n";
  }
  for (const NdlClause& clause : clauses_) {
    out += AtomToString(clause.head) + " <- ";
    for (size_t i = 0; i < clause.body.size(); ++i) {
      if (i > 0) out += " & ";
      out += AtomToString(clause.body[i]);
    }
    out += "\n";
  }
  return out;
}

}  // namespace owlqr
