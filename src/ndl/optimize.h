#ifndef OWLQR_NDL_OPTIMIZE_H_
#define OWLQR_NDL_OPTIMIZE_H_

#include "data/data_instance.h"
#include "ndl/program.h"

namespace owlqr {

// Rewriting optimisations discussed in Section 6: removing redundant rules
// and subqueries (Rosati & Almatelli; Gottlob et al.) and exploiting the
// emptiness of predicates (Venetis et al.).

// Removes clauses that mention an EDB predicate with an empty extension in
// `data` (they can never fire), then prunes cascading dead predicates.
// The result is only equivalent over data instances with the same empty
// predicates.  Returns the number of removed clauses.
int DropEmptyPredicateClauses(NdlProgram* program, const DataInstance& data);

// Removes clauses subsumed by another clause with the same head predicate:
// clause C is subsumed by D if some homomorphism maps D's body into C's body
// while preserving head arguments (then C's results are a subset of D's).
// Sound over all data instances.  Returns the number of removed clauses.
int RemoveSubsumedClauses(NdlProgram* program);

}  // namespace owlqr

#endif  // OWLQR_NDL_OPTIMIZE_H_
