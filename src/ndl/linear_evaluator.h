#ifndef OWLQR_NDL_LINEAR_EVALUATOR_H_
#define OWLQR_NDL_LINEAR_EVALUATOR_H_

#include <vector>

#include "data/data_instance.h"
#include "ndl/program.h"

namespace owlqr {

// The Theorem 2 evaluation procedure for *linear* NDL queries: deciding
// Pi, A |= G(a) reduces to reachability in the grounding graph G whose
// vertices are ground IDB atoms and whose edges are clause applications
// with their EDB side conditions satisfied in A.  Reachability is the NL
// part; this implementation materialises the graph explicitly (polynomial
// in |A|^w per the theorem) and runs BFS.
//
// Intended as a faithful algorithmic artifact and a differential oracle for
// the bottom-up Evaluator; use Evaluator for production workloads.
class LinearReachabilityEvaluator {
 public:
  // Requires program.IsLinear() and a goal predicate.
  LinearReachabilityEvaluator(const NdlProgram& program,
                              const DataInstance& data);

  // Pi, A |= G(answer)?
  bool Decide(const std::vector<int>& answer);

  // Statistics of the grounding graph built by the last Decide call.
  long num_vertices() const { return num_vertices_; }
  long num_edges() const { return num_edges_; }

 private:
  const NdlProgram& program_;
  const DataInstance& data_;
  long num_vertices_ = 0;
  long num_edges_ = 0;
};

}  // namespace owlqr

#endif  // OWLQR_NDL_LINEAR_EVALUATOR_H_
