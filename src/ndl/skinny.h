#ifndef OWLQR_NDL_SKINNY_H_
#define OWLQR_NDL_SKINNY_H_

#include <vector>

#include "ndl/program.h"

namespace owlqr {

// The minimal weight function nu of Section 3.1.2: nu(EDB) = 0 and
// nu(Q) = max(1, max over clauses Q <- P_1 ... P_k of sum nu(P_i)).
// Values saturate at kWeightCap for pathological programs.
std::vector<long> ComputeWeightFunction(const NdlProgram& program);

inline constexpr long kWeightCap = 1L << 60;

// The skinny depth sd(Pi, G) = 2 d(Pi, G) + log2 nu(G) + log2 e_Pi
// (Lemma 5), rounded up.
int SkinnyDepth(const NdlProgram& program);

// Lemma 5: an equivalent skinny program (every clause body has at most two
// atoms) of size O(|Pi|^2), width <= w(Pi, G) and depth <= sd(Pi, G).
// Clauses are first split into EDB and IDB components; EDB components are
// binarised by a balanced tree, IDB components by a Huffman tree over the
// weight function.
NdlProgram SkinnyTransform(const NdlProgram& program);

}  // namespace owlqr

#endif  // OWLQR_NDL_SKINNY_H_
