#include "ndl/optimize.h"

#include <map>

#include "ndl/transforms.h"
#include "util/metrics.h"

namespace owlqr {

int DropEmptyPredicateClauses(NdlProgram* program, const DataInstance& data) {
  OWLQR_NAMED_SPAN(span, "transform/drop-empty");
  std::vector<NdlClause> kept;
  int removed = 0;
  for (const NdlClause& clause : program->clauses()) {
    bool dead = false;
    for (const NdlAtom& atom : clause.body) {
      const PredicateInfo& info = program->predicate(atom.predicate);
      if (info.kind == PredicateKind::kConceptEdb &&
          data.ConceptMembers(info.external_id).empty()) {
        dead = true;
      } else if (info.kind == PredicateKind::kRoleEdb &&
                 data.RolePairs(info.external_id).empty()) {
        dead = true;
      }
    }
    if (dead) {
      ++removed;
    } else {
      kept.push_back(clause);
    }
  }
  program->ReplaceClauses(std::move(kept));
  removed += PruneProgram(program);
  span.Attr("removed", removed);
  return removed;
}

namespace {

// Tries to extend the substitution theta (D-variable -> C-term) so that
// theta(d_term) == c_term.
bool UnifyOneWay(const Term& d_term, const Term& c_term,
                 std::map<int, Term>* theta) {
  if (d_term.is_constant) return d_term == c_term;
  auto it = theta->find(d_term.value);
  if (it != theta->end()) return it->second == c_term;
  theta->emplace(d_term.value, c_term);
  return true;
}

// Matches D's body atoms into C's body (one-way, injective on atoms not
// required) extending theta; backtracking over candidate targets.
bool MatchBody(const std::vector<NdlAtom>& d_body,
               const std::vector<NdlAtom>& c_body, size_t next,
               std::map<int, Term> theta) {
  if (next == d_body.size()) return true;
  const NdlAtom& d_atom = d_body[next];
  for (const NdlAtom& c_atom : c_body) {
    if (c_atom.predicate != d_atom.predicate) continue;
    std::map<int, Term> extended = theta;
    bool ok = true;
    for (size_t i = 0; i < d_atom.args.size() && ok; ++i) {
      ok = UnifyOneWay(d_atom.args[i], c_atom.args[i], &extended);
    }
    if (ok && MatchBody(d_body, c_body, next + 1, std::move(extended))) {
      return true;
    }
  }
  return false;
}

// True iff clause D subsumes clause C (same head predicate assumed):
// exists theta with theta(D.head) = C.head and theta(D.body) a subset of
// C.body.  Then C is redundant.
bool Subsumes(const NdlClause& d, const NdlClause& c) {
  std::map<int, Term> theta;
  for (size_t i = 0; i < d.head.args.size(); ++i) {
    if (!UnifyOneWay(d.head.args[i], c.head.args[i], &theta)) return false;
  }
  return MatchBody(d.body, c.body, 0, std::move(theta));
}

}  // namespace

int RemoveSubsumedClauses(NdlProgram* program) {
  OWLQR_NAMED_SPAN(span, "transform/subsumption");
  const std::vector<NdlClause>& clauses = program->clauses();
  int n = program->num_clauses();
  std::vector<bool> removed(n, false);
  for (int i = 0; i < n; ++i) {
    if (removed[i]) continue;
    for (int j = i + 1; j < n; ++j) {
      if (removed[j]) continue;
      if (clauses[i].head.predicate != clauses[j].head.predicate) continue;
      if (Subsumes(clauses[i], clauses[j])) {
        removed[j] = true;  // Keeps the earlier clause on mutual subsumption.
      } else if (Subsumes(clauses[j], clauses[i])) {
        removed[i] = true;
        break;
      }
    }
  }
  std::vector<NdlClause> kept;
  int count = 0;
  for (int i = 0; i < n; ++i) {
    if (removed[i]) {
      ++count;
    } else {
      kept.push_back(clauses[i]);
    }
  }
  program->ReplaceClauses(std::move(kept));
  span.Attr("removed", count);
  return count;
}

}  // namespace owlqr
