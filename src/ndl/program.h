#ifndef OWLQR_NDL_PROGRAM_H_
#define OWLQR_NDL_PROGRAM_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "ontology/vocabulary.h"

namespace owlqr {

// A term of a datalog atom: a (clause-local) variable or an individual
// constant (vocabulary individual id).
struct Term {
  int value = 0;
  bool is_constant = false;

  static Term Var(int v) { return {v, false}; }
  static Term Const(int c) { return {c, true}; }

  bool operator==(const Term& o) const {
    return value == o.value && is_constant == o.is_constant;
  }
};

struct NdlAtom {
  int predicate = -1;
  std::vector<Term> args;
};

// A Horn clause head <- body.  Variables are clause-local dense ints; every
// head variable must occur in the body (safety; see EnsureSafety()).
struct NdlClause {
  NdlAtom head;
  std::vector<NdlAtom> body;

  int NumVariables() const;
};

// How a predicate of an NDL program gets its extension.
enum class PredicateKind {
  kIdb,         // Defined by clauses.
  kConceptEdb,  // Unary facts of a concept (external_id = concept id).
  kRoleEdb,     // Binary facts of a predicate (external_id = predicate id).
  kTableEdb,    // Rows of a source table (external_id = TableStore id);
                // used by the GAV mapping layer (core/mapping.h).
  kEquality,    // Built-in equality over individuals.
  kAdom,        // Built-in active domain (all individuals, arity 1).
};

struct PredicateInfo {
  std::string name;
  int arity = 0;
  PredicateKind kind = PredicateKind::kIdb;
  int external_id = -1;
  // For ordered NDL queries: which argument positions hold parameters
  // (answer variables).  Empty means "no parameters".
  std::vector<bool> parameter_positions;
};

// A (nonrecursive) datalog program together with a goal predicate, i.e. an
// NDL query (Pi, G(x)).  The program does not enforce nonrecursiveness at
// construction; `IsNonrecursive()` checks it.
class NdlProgram {
 public:
  explicit NdlProgram(Vocabulary* vocabulary);

  Vocabulary* vocabulary() const { return vocabulary_; }

  // --- Predicates ---------------------------------------------------------
  int AddIdbPredicate(const std::string& name, int arity);
  // EDB predicates are deduplicated by external id.
  int AddConceptPredicate(int concept_id);
  int AddRolePredicate(int predicate_id);
  // Source-table EDB predicate (deduplicated by table id).
  int AddTablePredicate(const std::string& name, int arity, int table_id);
  int EqualityPredicate();  // Created on first use.
  int AdomPredicate();

  int num_predicates() const { return static_cast<int>(predicates_.size()); }
  const PredicateInfo& predicate(int p) const { return predicates_[p]; }
  PredicateInfo& mutable_predicate(int p) { return predicates_[p]; }
  bool IsIdb(int p) const {
    return predicates_[p].kind == PredicateKind::kIdb;
  }

  // --- Clauses ------------------------------------------------------------
  void AddClause(NdlClause clause);
  int num_clauses() const { return static_cast<int>(clauses_.size()); }
  const NdlClause& clause(int i) const { return clauses_[i]; }
  const std::vector<NdlClause>& clauses() const { return clauses_; }
  // Indices of clauses whose head predicate is `p`.
  const std::vector<int>& ClausesFor(int p) const;
  // Replaces the clause list wholesale (used by transforms).
  void ReplaceClauses(std::vector<NdlClause> clauses);

  void SetGoal(int predicate) { goal_ = predicate; }
  int goal() const { return goal_; }

  // --- Analysis -----------------------------------------------------------
  // True iff the dependence graph is acyclic (i.e. the program is NDL).
  bool IsNonrecursive() const;
  // IDB predicates in dependency order (dependencies first).  Requires
  // nonrecursiveness.
  std::vector<int> TopologicalOrder() const;
  // TopologicalOrder() computed once and cached until the clause list
  // changes.  Like the other lazy caches, the first call must not race with
  // concurrent use; compute it before sharing the program across threads.
  const std::vector<int>& CachedTopologicalOrder() const;
  // The dependence adjacency restricted to IDB predicates: dep[p] = the
  // distinct IDB predicates occurring in the bodies of p's clauses (self
  // edges dropped; empty for non-IDB p).  This is the edge set the
  // evaluator's DAG scheduler runs on; cached until the clauses change.
  const std::vector<std::vector<int>>& IdbDependencies() const;
  // IDB predicates grouped into dependence levels: level k holds predicates
  // whose longest IDB-dependency chain has length k.  Predicates within one
  // level are independent and can be materialised in parallel (the NC-style
  // evaluation the paper's LOGCFL membership rests on).
  std::vector<std::vector<int>> TopologicalLevels() const;
  // d(Pi, G): longest dependence path from the goal.
  int Depth() const;
  // At most one IDB atom per clause body.
  bool IsLinear() const;
  // At most two atoms per clause body.
  bool IsSkinny() const;
  // Max EDB (incl. equality/adom) atoms in a clause body (e_Pi of Lemma 5).
  int MaxEdbAtomsPerClause() const;
  // Width of the ordered query: max number of distinct non-parameter
  // variables in a clause.
  int Width() const;
  // Total number of symbols, the |Pi| size measure (atoms + args).
  long SizeInSymbols() const;

  std::string ToString() const;
  std::string AtomToString(const NdlAtom& atom) const;

 private:
  Vocabulary* vocabulary_;  // Not owned.
  std::vector<PredicateInfo> predicates_;
  std::unordered_map<std::string, int> predicate_by_name_;
  std::unordered_map<int, int> concept_edb_;  // concept id -> predicate.
  std::unordered_map<int, int> role_edb_;     // predicate id -> predicate.
  std::unordered_map<int, int> table_edb_;    // table id -> predicate.
  int equality_ = -1;
  int adom_ = -1;
  std::vector<NdlClause> clauses_;
  mutable std::vector<std::vector<int>> clauses_for_;  // Lazy index.
  mutable bool clause_index_valid_ = false;
  mutable std::vector<int> topo_order_;                // Lazy (see above).
  mutable bool topo_order_valid_ = false;
  mutable std::vector<std::vector<int>> idb_deps_;     // Lazy (see above).
  mutable bool idb_deps_valid_ = false;
  int goal_ = -1;

  void BuildClauseIndex() const;
  void InvalidateAnalyses();
  // Adjacency of the dependence graph restricted to IDB predicates:
  // dep[q] = predicates q depends on.
  std::vector<std::vector<int>> DependenceGraph() const;
};

}  // namespace owlqr

#endif  // OWLQR_NDL_PROGRAM_H_
