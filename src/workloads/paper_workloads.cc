#include "workloads/paper_workloads.h"

#include <algorithm>
#include <cmath>
#include <random>

#include "util/logging.h"

namespace owlqr {

std::unique_ptr<TBox> MakeExample11TBox(Vocabulary* vocab) {
  auto tbox = std::make_unique<TBox>(vocab);
  int p = vocab->InternPredicate("P");
  int r = vocab->InternPredicate("R");
  int s = vocab->InternPredicate("S");
  tbox->AddRoleInclusion(RoleOf(p), RoleOf(s));
  tbox->AddRoleInclusion(RoleOf(p), RoleOf(r, /*inverse=*/true));
  tbox->Normalize();
  return tbox;
}

ConjunctiveQuery SequenceQuery(Vocabulary* vocab, std::string_view word) {
  OWLQR_CHECK(!word.empty());
  ConjunctiveQuery query(vocab);
  for (size_t i = 0; i < word.size(); ++i) {
    OWLQR_CHECK_MSG(word[i] == 'R' || word[i] == 'S',
                    "sequence words use the alphabet {R, S}");
    query.AddBinary(std::string(1, word[i]), "x" + std::to_string(i),
                    "x" + std::to_string(i + 1));
  }
  query.MarkAnswerVariable(query.FindVariable("x0"));
  query.MarkAnswerVariable(
      query.FindVariable("x" + std::to_string(word.size())));
  return query;
}

std::vector<DatasetConfig> Table2Configs(double scale) {
  // V, p, q per Table 2; the seed fixes the instance.
  std::vector<DatasetConfig> configs = {
      {"1", 1000, 0.050, 0.050, 20170001},
      {"2", 5000, 0.002, 0.004, 20170002},
      {"3", 10000, 0.002, 0.004, 20170003},
      {"4", 20000, 0.002, 0.010, 20170004},
  };
  if (scale != 1.0) {
    for (DatasetConfig& c : configs) {
      int scaled = std::max(16, static_cast<int>(c.num_vertices * scale));
      // Keep the average degree V*p and expected label count V*q.
      c.edge_probability *= static_cast<double>(c.num_vertices) / scaled;
      c.edge_probability = std::min(1.0, c.edge_probability);
      c.num_vertices = scaled;
    }
  }
  return configs;
}

DataInstance GenerateDataset(Vocabulary* vocab, const TBox& tbox,
                             const DatasetConfig& config) {
  DataInstance data(vocab);
  std::mt19937_64 rng(config.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  int r_pred = vocab->InternPredicate("R");
  int a_p = tbox.ExistsConcept(RoleOf(vocab->InternPredicate("P")));
  int a_p_inv = tbox.ExistsConcept(RoleOf(vocab->InternPredicate("P"), true));
  OWLQR_CHECK(a_p >= 0 && a_p_inv >= 0);

  int n = config.num_vertices;
  std::vector<int> vertices(n);
  for (int i = 0; i < n; ++i) {
    vertices[i] = data.AddIndividual(config.name + "_v" + std::to_string(i));
  }
  // Expected number of directed edges: n * (n-1) * p.  Sampling that many
  // random ordered pairs (deduplicated by the instance) is accurate for the
  // sparse regimes of Table 2 and much faster than the pairwise loop.
  double expected =
      static_cast<double>(n) * (n - 1) * config.edge_probability;
  long edges = static_cast<long>(std::llround(expected));
  std::uniform_int_distribution<int> pick(0, n - 1);
  for (long e = 0; e < edges; ++e) {
    int u = pick(rng);
    int v = pick(rng);
    if (u == v) continue;
    data.AddRoleAssertion(r_pred, vertices[u], vertices[v]);
  }
  for (int i = 0; i < n; ++i) {
    if (unit(rng) < config.label_probability) {
      data.AddConceptAssertion(a_p, vertices[i]);
    }
    if (unit(rng) < config.label_probability) {
      data.AddConceptAssertion(a_p_inv, vertices[i]);
    }
  }
  return data;
}

}  // namespace owlqr
