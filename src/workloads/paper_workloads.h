#ifndef OWLQR_WORKLOADS_PAPER_WORKLOADS_H_
#define OWLQR_WORKLOADS_PAPER_WORKLOADS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cq/cq.h"
#include "data/data_instance.h"
#include "ontology/tbox.h"

namespace owlqr {

// The experimental workload of Section 6 / Appendix D: the Example 11
// ontology with linear queries drawn from {R, S}* words, plus the Table 2
// Erdos-Renyi datasets.

// The three query sequences of Figure 2 / Table 1.
inline constexpr const char* kSequence1 = "RRSRSRSRRSRRSSR";
inline constexpr const char* kSequence2 = "SRRRRRSRSRRRRRR";
inline constexpr const char* kSequence3 = "SRRSSRSRSRRSRRS";

// Builds the Example 11 ontology (normalized) into `vocab`:
//   P(x,y) -> S(x,y),  P(x,y) -> R(y,x),  A_rho <-> exists rho.
std::unique_ptr<TBox> MakeExample11TBox(Vocabulary* vocab);

// The linear CQ q(x0, xn) whose i-th atom is word[i](x_i, x_{i+1}); both
// endpoints are answer variables (Example 8 is SequenceQuery("RSRRSRR")).
ConjunctiveQuery SequenceQuery(Vocabulary* vocab, std::string_view word);

// Table 2 dataset configurations.
struct DatasetConfig {
  std::string name;
  int num_vertices;
  double edge_probability;   // p: probability of an R-edge.
  double label_probability;  // q: probability of A[P] / A[P-] per vertex.
  uint64_t seed;
};

// The four Table 2 configurations scaled by `scale` in [0, 1] (vertex counts
// multiplied by scale; probabilities rescaled to keep the average degree).
std::vector<DatasetConfig> Table2Configs(double scale = 1.0);

// Generates a dataset per Appendix D.2: directed R-edges with probability p,
// and the witness-triggering concepts A[P], A[P-] each with probability q
// per vertex.  Deterministic in `seed`.
DataInstance GenerateDataset(Vocabulary* vocab, const TBox& tbox,
                             const DatasetConfig& config);

}  // namespace owlqr

#endif  // OWLQR_WORKLOADS_PAPER_WORKLOADS_H_
