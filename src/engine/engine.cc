#include "engine/engine.h"

#include <chrono>
#include <utility>

#include "core/omq.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace owlqr {

namespace {

TBox NormalizedCopy(const TBox& tbox) {
  TBox copy = tbox;
  copy.Normalize();  // Idempotent.
  return copy;
}

}  // namespace

IncrementalStateCache::IncrementalStateCache(size_t capacity,
                                             MemoryBudget* budget)
    : capacity_(capacity), budget_(budget) {}

IncrementalStateCache::~IncrementalStateCache() { Clear(); }

IncrementalStateCache::Checkout IncrementalStateCache::Take(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_key_.find(key);
  if (it == by_key_.end()) return {};
  Checkout out;
  out.state = std::move(it->second->state);
  out.charged_bytes = it->second->bytes;
  entries_.erase(it->second);
  by_key_.erase(it);
  return out;
}

void IncrementalStateCache::Publish(const std::string& key,
                                    RetainedIdbState state,
                                    size_t charged_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  const size_t bytes = state.MemoryBytes();
  // Settle the caller's outstanding charge to the state's published size.
  if (budget_ != nullptr) {
    if (bytes > charged_bytes) {
      budget_->Charge(bytes - charged_bytes);
    } else if (charged_bytes > bytes) {
      budget_->Release(charged_bytes - bytes);
    }
  }
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    // Racing publishers of the same key: the loser's entry is replaced and
    // its charge released.
    if (budget_ != nullptr) budget_->Release(it->second->bytes);
    entries_.erase(it->second);
    by_key_.erase(it);
  }
  entries_.push_front(Entry{key, std::move(state), bytes});
  by_key_[key] = entries_.begin();
  while (entries_.size() > capacity_) EvictBack();
  // Budget pressure sheds retained state LRU-first: executions' live
  // arenas matter more than our cache, and the entry just published is the
  // last to go.
  if (budget_ != nullptr && budget_->limit() > 0) {
    while (budget_->used() > budget_->limit() && !entries_.empty()) {
      EvictBack();
    }
  }
}

void IncrementalStateCache::Discard(size_t charged_bytes) {
  if (budget_ != nullptr && charged_bytes > 0) {
    budget_->Release(charged_bytes);
  }
}

void IncrementalStateCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  while (!entries_.empty()) EvictBack();
}

size_t IncrementalStateCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void IncrementalStateCache::EvictBack() {
  if (budget_ != nullptr) budget_->Release(entries_.back().bytes);
  by_key_.erase(entries_.back().key);
  entries_.pop_back();
}

Engine::Engine(TBox normalized, std::shared_ptr<const DataSnapshot> snapshot,
               const EngineOptions& options)
    : tbox_(std::move(normalized)),
      ctx_(tbox_),
      fingerprint_(FingerprintTBox(tbox_)),
      cache_(options.plan_cache_capacity),
      snapshot_(std::move(snapshot)),
      governor_(options.governor),
      incremental_(options.incremental_state_capacity, governor_.budget()),
      answer_cache_(options.answer_cache_capacity,
                    options.answer_cache_max_bytes, governor_.budget()),
      coalesce_(options.coalesce),
      delta_log_capacity_(options.delta_log_capacity),
      store_(options.store) {}

Engine::Engine(const TBox& tbox, const DataInstance& data,
               const TableStore* tables, const EngineOptions& options)
    : Engine(NormalizedCopy(tbox), DataSnapshot::FromInstance(data, tables),
             options) {
  OWLQR_CHECK_MSG(options.store == nullptr,
                  "store-backed engines must be created via Engine::Open "
                  "(recovery has to run before the engine serves)");
}

std::unique_ptr<Engine> Engine::Open(const TBox& tbox,
                                     const DataInstance& data,
                                     const TableStore* tables,
                                     const EngineOptions& options,
                                     Status* status) {
  Status local_status;
  if (status == nullptr) status = &local_status;
  *status = Status::Ok();
  if (options.store == nullptr) {
    return std::make_unique<Engine>(tbox, data, tables, options);
  }
  if (tables != nullptr) {
    *status = Status::InvalidArgument(
        "a durable store cannot back mapping-layer source tables");
    return nullptr;
  }
  OWLQR_NAMED_SPAN(span, "engine/open-recover");
  const auto t0 = std::chrono::steady_clock::now();

  TBox normalized = NormalizedCopy(tbox);
  const uint64_t fingerprint = FingerprintTBox(normalized);
  size_t resident_bytes = options.store_resident_bytes;
  if (resident_bytes == 0 && options.governor.max_memory_bytes > 0) {
    // Half the governor budget: recovered columns share the budget with
    // execution arenas and the retained-state caches.
    resident_bytes = options.governor.max_memory_bytes / 2;
  }

  store::RecoveredState recovered;
  *status = options.store->Recover(normalized.vocabulary(), fingerprint,
                                   resident_bytes, &recovered);
  if (!status->ok()) return nullptr;

  std::unique_ptr<Engine> engine;
  if (recovered.fresh) {
    engine.reset(new Engine(std::move(normalized),
                            DataSnapshot::FromInstance(data), options));
    // Seed the baseline segment before anything can be acknowledged; a
    // failure here fails Open, because an append-only log with no baseline
    // is the unrecoverable LOG-without-CURRENT state.
    *status = options.store->Checkpoint(*engine->snapshot(),
                                        *engine->vocabulary());
    if (!status->ok()) return nullptr;
  } else {
    // The store is the source of truth; `data` was only ever its seed.
    engine.reset(new Engine(std::move(normalized), std::move(recovered.base),
                            options));
    Vocabulary* vocab = engine->vocabulary();
    for (const store::LogRecord& record : recovered.tail) {
      // Resolve names against the live vocabulary.  Intern, not Find: the
      // names were valid when acknowledged, and interning an already-known
      // name is the identity.
      FactBatch batch;
      batch.concepts.reserve(record.batch.concepts.size());
      for (const auto& fact : record.batch.concepts) {
        batch.concepts.push_back(
            {vocab->InternConcept(fact.concept_name),
             vocab->InternIndividual(fact.individual)});
      }
      batch.roles.reserve(record.batch.roles.size());
      for (const auto& fact : record.batch.roles) {
        batch.roles.push_back({vocab->InternPredicate(fact.role),
                               vocab->InternIndividual(fact.subject),
                               vocab->InternIndividual(fact.object)});
      }
      uint64_t version = 0;
      *status = engine->ApplyFactsInternal(batch, &version,
                                           /*persist=*/false);
      if (!status->ok()) return nullptr;
      if (version != record.version) {
        *status = Status::DataLoss(
            "log replay diverged: record for version " +
            std::to_string(record.version) + " produced version " +
            std::to_string(version) +
            " (a record was a no-op against the recovered baseline)");
        return nullptr;
      }
    }
  }
  engine->recovery_ms_ = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  span.Attr("tail_records", static_cast<long>(recovered.tail.size()));
  OWLQR_RECORD("engine/recovery_ms", engine->recovery_ms_);
  return engine;
}

PrepareResult Engine::Prepare(const ConjunctiveQuery& query,
                              const PrepareOptions& options) {
  OWLQR_NAMED_SPAN(span, "engine/prepare");
  RewriterKind kind = options.kind;
  if (options.auto_kind) {
    // Shared lock: profiling reads the context's word graph, which a
    // concurrent cache-miss rewrite (below, under the exclusive lock) may
    // be growing.  Unlocked, this read raced that growth.
    std::shared_lock<std::shared_mutex> ctx_lock(ctx_mutex_);
    kind = ProfileOmq(ctx_, query).RecommendedRewriter();
  }
  span.Attr("kind", static_cast<long>(kind));
  const std::string key =
      MakePlanCacheKey(fingerprint_, query, kind, options.rewrite);
  if (std::shared_ptr<const PreparedQuery> hit = cache_.Get(key)) {
    span.Attr("cache_hit", 1);
    return {Status::Ok(), std::move(hit), true};
  }

  std::lock_guard<std::mutex> lock(prepare_mutex_);
  // A concurrent Prepare of the same key may have filled the cache while we
  // waited for the compile lock.
  if (std::shared_ptr<const PreparedQuery> hit =
          cache_.Get(key, /*count_miss=*/false)) {
    span.Attr("cache_hit", 1);
    return {Status::Ok(), std::move(hit), true};
  }
  span.Attr("cache_hit", 0);
  RewriteResult rewritten = [&] {
    // Exclusive: the rewrite grows the context's word table, and
    // ProfileOmq readers above must never observe that mid-growth.
    // prepare_mutex_ (held) already serializes rewrites among themselves.
    std::unique_lock<std::shared_mutex> ctx_lock(ctx_mutex_);
    return RewriteOmqOrError(&ctx_, query, kind, options.rewrite);
  }();
  if (!rewritten.ok()) {
    return {std::move(rewritten.status), nullptr, false};
  }
  auto prepared = std::make_shared<const PreparedQuery>(
      std::move(rewritten.program), kind, rewritten.diag, key);
  cache_.Put(key, prepared);
  return {Status::Ok(), std::move(prepared), false};
}

ExecuteResult Engine::Execute(const PreparedQuery& prepared,
                              const ExecuteRequest& request) const {
  OWLQR_NAMED_SPAN(span, "engine/execute");
  if (!answer_cache_.enabled() && !coalesce_) {
    return ExecuteGoverned(prepared, request, nullptr, &span);
  }

  // Resolve before compute: the answer set is a pure function of (plan,
  // snapshot version, limits), so pin the version and look the request up
  // before paying for admission or evaluation.
  std::shared_ptr<const DataSnapshot> snap = snapshot();
  const uint64_t keyed_version = snap->version();
  const std::string key =
      AnswerCacheKey(prepared.cache_key(), keyed_version, request.limits);
  if (std::shared_ptr<const ExecuteResult> hit = answer_cache_.Get(key)) {
    span.Attr("answer_cache_hit", 1);
    span.Attr("snapshot_version", static_cast<long>(hit->snapshot_version));
    governor_.RecordAnswerCacheHit();
    ExecuteResult result = *hit;  // Byte-identical copy of a clean run.
    result.cached = true;
    return result;
  }
  // A follower parks on the leader's shared_future, an uninterruptible
  // wait — requests that refuse to wait (queue_timeout_ms == 0) or that
  // may need to abort (a cancel token) must keep their own semantics and
  // evaluate themselves.  They skip leading too: a leader that gets
  // cancelled or shed would resolve its followers with that failure for
  // no better reason than arrival order.
  const bool can_coalesce = coalesce_ && request.cancel == nullptr &&
                            request.queue_timeout_ms != 0;
  InFlightTable::Ticket ticket;
  if (can_coalesce) {
    ticket = inflight_.JoinOrLead(key);
    if (!ticket.leader) {
      // Follower: an identical execution is already running.  Wait for its
      // result instead of burning an admission slot re-deriving it; the
      // leader resolves the future on every exit path, failures included.
      std::shared_ptr<const ExecuteResult> ready = ticket.flight->future.get();
      span.Attr("coalesced", 1);
      span.Attr("snapshot_version",
                static_cast<long>(ready->snapshot_version));
      governor_.RecordCoalesced();
      ExecuteResult result = *ready;
      result.coalesced = true;
      return result;
    }
  }

  ExecuteResult result =
      ExecuteGoverned(prepared, request, std::move(snap), &span);

  // Publish ONLY a clean complete run: a partial, degraded or aborted
  // result would poison every later hit.  The incremental path may have
  // re-pinned the snapshot forward, so key the publish by the version the
  // result actually answers for.
  std::shared_ptr<const ExecuteResult> shared;
  const bool clean =
      result.status.ok() && !result.partial && !result.degraded;
  if (answer_cache_.enabled() && clean) {
    shared = std::make_shared<const ExecuteResult>(result);
    const std::string publish_key =
        result.snapshot_version == keyed_version
            ? key
            : AnswerCacheKey(prepared.cache_key(), result.snapshot_version,
                             request.limits);
    answer_cache_.Put(publish_key, result.snapshot_version, shared);
  }
  if (ticket.leader) {
    // Resolve the followers — with failure too, but never via the cache.
    if (shared == nullptr) {
      shared = std::make_shared<const ExecuteResult>(result);
    }
    inflight_.Finish(key, ticket.flight, std::move(shared));
  }
  return result;
}

ExecuteResult Engine::ExecuteGoverned(
    const PreparedQuery& prepared, const ExecuteRequest& request,
    std::shared_ptr<const DataSnapshot> snap, ScopedSpan* span) const {
  // Admission first: a shed request must cost as little as possible — with
  // memoization off no snapshot is pinned yet, so shedding pins none.
  QueryGovernor::Admission admission =
      governor_.Admit(request.queue_timeout_ms);
  if (!admission.admitted()) {
    span->Attr("rejected", 1);
    ExecuteResult result;
    result.status = admission.status();
    result.partial = true;  // The (empty) answer set is incomplete.
    return result;
  }
  if (snap == nullptr) snap = snapshot();  // Pin the version.
  span->Attr("snapshot_version", static_cast<long>(snap->version()));
  span->Attr("threads", request.num_threads);

  const GovernorOptions& gov = governor_.options();

  // Incremental maintenance only serves complete answer sets: a tuple/work
  // limit could truncate the retained state, which would then poison every
  // later delta run.
  const bool want_incremental =
      request.incremental && incremental_.capacity() > 0 &&
      request.limits.max_generated_tuples <= 0 && request.limits.max_work <= 0;
  ExecuteResult result;
  if (want_incremental &&
      ExecuteIncremental(prepared, request, &snap, &result)) {
    span->Attr("incremental", 1);
    // The incremental path may have re-pinned `snap` forward; re-record the
    // version the result actually answers for.
    span->Attr("snapshot_version",
               static_cast<long>(result.snapshot_version));
    governor_.RecordOutcome(result.status.code(), /*degraded=*/false);
    return result;
  }

  // One evaluation under a fresh MemoryAccount; the account dies with the
  // evaluator's arenas, handing every charged byte back to the budget.
  // `capture` (nullable) receives the materialised IDB state of a clean,
  // complete run, to seed later incremental executions.
  auto run_once = [&](const ExecuteRequest& req, RetainedIdbState* capture) {
    MemoryAccount account(governor_.budget(),
                          gov.max_execution_memory_bytes);
    Evaluator eval(prepared.program(), snap);
    eval.set_join_order_hints(prepared.join_order_hints());
    eval.set_memory_account(&account);
    ExecuteResult r = eval.Run(req);
    if (capture != nullptr && r.status.ok() && !r.partial) {
      eval.ExtractRetainedState(capture);
    }
    return r;
  };

  RetainedIdbState capture;
  result = run_once(request, want_incremental ? &capture : nullptr);
  bool degraded = false;
  if (result.status.code() == StatusCode::kMemoryExceeded &&
      gov.degraded_max_generated_tuples > 0 &&
      (request.limits.max_generated_tuples <= 0 ||
       request.limits.max_generated_tuples >
           gov.degraded_max_generated_tuples)) {
    // Graceful degradation: the first run's arenas are gone (released
    // above), so retry once with a tuple limit small enough to fit — a
    // truncated answer beats none.  The retry can itself abort; its result
    // (including a repeat kMemoryExceeded) is final.
    //
    // The retry runs on a freshly pinned snapshot (facts applied while the
    // first run churned are visible, and the reported snapshot_version
    // matches the data actually read) and, via run_once, on a fresh
    // MemoryAccount whose destructor already reconciled the aborted run's
    // charges back to the budget.  It never captures retained state —
    // the tightened limit makes its answers partial by construction.
    degraded = true;
    span->Attr("degraded_retry", 1);
    snap = snapshot();
    // The retry answers for the re-pinned version, not the one recorded at
    // entry; without this re-record the trace lied after every retry that
    // straddled an ApplyFacts.
    span->Attr("snapshot_version", static_cast<long>(snap->version()));
    ExecuteRequest tightened = request;
    tightened.limits.max_generated_tuples =
        gov.degraded_max_generated_tuples;
    result = run_once(tightened, nullptr);
    result.degraded = true;
    // Even a clean retry answered under tighter limits than asked for.
    result.partial = true;
  }
  if (capture.valid()) {
    incremental_.Publish(prepared.cache_key(), std::move(capture),
                         /*charged_bytes=*/0);
  }
  governor_.RecordOutcome(result.status.code(), degraded);
  return result;
}

bool Engine::ExecuteIncremental(const PreparedQuery& prepared,
                                const ExecuteRequest& request,
                                std::shared_ptr<const DataSnapshot>* snap,
                                ExecuteResult* result) const {
  IncrementalStateCache::Checkout checkout =
      incremental_.Take(prepared.cache_key());
  if (!checkout.state.valid()) return false;  // Miss: nothing charged.
  if (checkout.state.version > (*snap)->version()) {
    // The retained state was captured on a snapshot newer than the one we
    // pinned (an ApplyFacts landed in between).  Versions are monotone, so
    // re-pinning forward reconverges; answers are still correct for the
    // version the result reports.
    *snap = snapshot();
  }
  SnapshotDelta delta;
  if (checkout.state.version > (*snap)->version() ||
      !DeltaBetween(checkout.state.version, (*snap)->version(), &delta)) {
    // Version gap (log trimmed, or still ahead after re-pin): the state is
    // useless and its successor will be re-captured by the full run.
    incremental_.Discard(checkout.charged_bytes);
    return false;
  }

  const GovernorOptions& gov = governor_.options();
  MemoryAccount account(governor_.budget(), gov.max_execution_memory_bytes);
  Evaluator eval(prepared.program(), *snap);
  eval.set_join_order_hints(prepared.join_order_hints());
  eval.set_memory_account(&account);
  *result = eval.RunDelta(request, delta, &checkout.state);
  if (result->status.ok() && !result->partial && checkout.state.valid()) {
    incremental_.Publish(prepared.cache_key(), std::move(checkout.state),
                         checkout.charged_bytes);
    return true;
  }
  // Aborted or otherwise incomplete: RunDelta already dropped the adopted
  // state (its arenas die with the evaluator), so release its charge and
  // let the caller fall back to a full evaluation.
  incremental_.Discard(checkout.charged_bytes);
  return false;
}

bool Engine::DeltaBetween(uint64_t from, uint64_t to,
                          SnapshotDelta* out) const {
  if (from > to) return false;
  if (from == to) return true;  // Empty delta: state is already current.
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  // Log versions are ascending and gap-free, so the range [from+1, to] maps
  // to a contiguous run of entries when it is still resident.
  if (delta_log_.empty() || delta_log_.front().version > from + 1 ||
      delta_log_.back().version < to) {
    return false;
  }
  size_t idx = static_cast<size_t>(from + 1 - delta_log_.front().version);
  for (uint64_t v = from + 1; v <= to; ++v, ++idx) {
    out->MergeFrom(delta_log_[idx].delta);
  }
  return true;
}

ExecuteResult Engine::Query(const ConjunctiveQuery& query,
                            const ExecuteRequest& request, Status* status,
                            const PrepareOptions& prepare_options) {
  PrepareResult prepared = Prepare(query, prepare_options);
  if (status != nullptr) *status = prepared.status;
  if (!prepared.ok()) return {};
  return Execute(*prepared.query, request);
}

Status Engine::ApplyFactsOrError(const FactBatch& batch, uint64_t* version) {
  return ApplyFactsInternal(batch, version, /*persist=*/true);
}

Status Engine::ApplyFactsInternal(const FactBatch& batch, uint64_t* version,
                                  bool persist) {
  // Validate every id against the engine's vocabulary BEFORE building
  // anything: an unknown or negative id would create an orphan relation no
  // rewritten program can ever name — the fact would be silently
  // unqueryable rather than rejected.
  const Vocabulary& vocab = *tbox_.vocabulary();
  const int num_concepts = vocab.num_concepts();
  const int num_predicates = vocab.num_predicates();
  const int num_individuals = vocab.num_individuals();
  for (const FactBatch::ConceptFact& fact : batch.concepts) {
    if (fact.concept_id < 0 || fact.concept_id >= num_concepts) {
      return Status::InvalidArgument("ApplyFacts: unknown concept id");
    }
    if (fact.individual < 0 || fact.individual >= num_individuals) {
      return Status::InvalidArgument("ApplyFacts: unknown individual id");
    }
  }
  for (const FactBatch::RoleFact& fact : batch.roles) {
    if (fact.role_id < 0 || fact.role_id >= num_predicates) {
      return Status::InvalidArgument("ApplyFacts: unknown role id");
    }
    if (fact.subject < 0 || fact.subject >= num_individuals ||
        fact.object < 0 || fact.object >= num_individuals) {
      return Status::InvalidArgument("ApplyFacts: unknown individual id");
    }
  }

  uint64_t new_version;
  {
    // One in-flight WithFacts at a time (monotone versions, gap-free delta
    // log); the expensive copy-on-write build runs with snapshot_mutex_
    // RELEASED, so Execute calls pin snapshots without waiting behind it.
    std::lock_guard<std::mutex> apply_lock(apply_mutex_);
    std::shared_ptr<const DataSnapshot> parent;
    {
      std::lock_guard<std::mutex> lock(snapshot_mutex_);
      parent = snapshot_;
    }
    SnapshotDelta delta;
    std::shared_ptr<const DataSnapshot> next = parent->WithFacts(batch, &delta);
    if (persist && store_ != nullptr && next != parent) {
      // Write-ahead: the delta (only the genuinely new rows, by name) must
      // be durable BEFORE the version is installed, so every version a
      // caller ever observes is recoverable.  On append failure the engine
      // stays on the parent version — the built snapshot is discarded.
      store::NamedFactBatch named;
      named.concepts.reserve(delta.concept_rows.size());
      for (const auto& [concept_id, rows] : delta.concept_rows) {
        const std::string& concept_name = vocab.ConceptName(concept_id);
        for (int individual : rows) {
          named.concepts.push_back(
              {concept_name, vocab.IndividualName(individual)});
        }
      }
      for (const auto& [role_id, rows] : delta.role_rows) {
        const std::string& role_name = vocab.PredicateName(role_id);
        for (size_t i = 0; i + 1 < rows.size(); i += 2) {
          named.roles.push_back({role_name, vocab.IndividualName(rows[i]),
                                 vocab.IndividualName(rows[i + 1])});
        }
      }
      Status status = store_->AppendBatch(next->version(), named);
      if (!status.ok()) return status;
    }
    {
      std::lock_guard<std::mutex> lock(snapshot_mutex_);
      if (next != parent) {
        snapshot_ = next;
        delta_log_.push_back({next->version(), std::move(delta)});
        while (delta_log_.size() > delta_log_capacity_) {
          delta_log_.pop_front();
        }
      }
      // On the no-op path the parent snapshot (and version) stands.
      new_version = snapshot_->version();
    }
    if (next != parent) {
      // Memoized answers for older versions can never hit again (the key
      // embeds the version); sweep them now instead of letting dead entries
      // hold budget until LRU eviction reaches them.
      answer_cache_.InvalidateBelow(new_version);
    }
    if (persist && store_ != nullptr && store_->ShouldCompact()) {
      // Inline compaction, still under apply_mutex_ (checkpoints must not
      // interleave with appends).  Failure is deliberately swallowed: the
      // version just acknowledged IS durable in the log; the store counts
      // the failed compaction and the next apply retries.
      store_->Checkpoint(*snapshot(), vocab);
    }
  }
  if (version != nullptr) *version = new_version;
  return Status::Ok();
}

Status Engine::Checkpoint() {
  if (store_ == nullptr) {
    return Status::InvalidArgument("engine has no durable store");
  }
  std::lock_guard<std::mutex> apply_lock(apply_mutex_);
  return store_->Checkpoint(*snapshot(), *tbox_.vocabulary());
}

void Engine::ClearIncrementalState() const { incremental_.Clear(); }

std::shared_ptr<const DataSnapshot> Engine::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

}  // namespace owlqr
