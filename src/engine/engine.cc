#include "engine/engine.h"

#include <utility>

#include "core/omq.h"
#include "util/metrics.h"

namespace owlqr {

namespace {

TBox NormalizedCopy(const TBox& tbox) {
  TBox copy = tbox;
  copy.Normalize();  // Idempotent.
  return copy;
}

}  // namespace

Engine::Engine(const TBox& tbox, const DataInstance& data,
               const TableStore* tables, const EngineOptions& options)
    : tbox_(NormalizedCopy(tbox)),
      ctx_(tbox_),
      fingerprint_(FingerprintTBox(tbox_)),
      cache_(options.plan_cache_capacity),
      snapshot_(DataSnapshot::FromInstance(data, tables)),
      governor_(options.governor) {}

PrepareResult Engine::Prepare(const ConjunctiveQuery& query,
                              const PrepareOptions& options) {
  OWLQR_NAMED_SPAN(span, "engine/prepare");
  RewriterKind kind = options.kind;
  if (options.auto_kind) {
    kind = ProfileOmq(ctx_, query).RecommendedRewriter();
  }
  span.Attr("kind", static_cast<long>(kind));
  const std::string key =
      MakePlanCacheKey(fingerprint_, query, kind, options.rewrite);
  if (std::shared_ptr<const PreparedQuery> hit = cache_.Get(key)) {
    span.Attr("cache_hit", 1);
    return {Status::Ok(), std::move(hit), true};
  }

  std::lock_guard<std::mutex> lock(prepare_mutex_);
  // A concurrent Prepare of the same key may have filled the cache while we
  // waited for the compile lock.
  if (std::shared_ptr<const PreparedQuery> hit =
          cache_.Get(key, /*count_miss=*/false)) {
    span.Attr("cache_hit", 1);
    return {Status::Ok(), std::move(hit), true};
  }
  span.Attr("cache_hit", 0);
  RewriteResult rewritten =
      RewriteOmqOrError(&ctx_, query, kind, options.rewrite);
  if (!rewritten.ok()) {
    return {std::move(rewritten.status), nullptr, false};
  }
  auto prepared = std::make_shared<const PreparedQuery>(
      std::move(rewritten.program), kind, rewritten.diag, key);
  cache_.Put(key, prepared);
  return {Status::Ok(), std::move(prepared), false};
}

ExecuteResult Engine::Execute(const PreparedQuery& prepared,
                              const ExecuteRequest& request) const {
  OWLQR_NAMED_SPAN(span, "engine/execute");
  // Admission first: a shed request must cost nothing — no snapshot pin,
  // no evaluator, no memory.
  QueryGovernor::Admission admission =
      governor_.Admit(request.queue_timeout_ms);
  if (!admission.admitted()) {
    span.Attr("rejected", 1);
    ExecuteResult result;
    result.status = admission.status();
    result.partial = true;  // The (empty) answer set is incomplete.
    return result;
  }
  std::shared_ptr<const DataSnapshot> snap = snapshot();  // Pin the version.
  span.Attr("snapshot_version", static_cast<long>(snap->version()));
  span.Attr("threads", request.num_threads);

  const GovernorOptions& gov = governor_.options();
  // One evaluation under a fresh MemoryAccount; the account dies with the
  // evaluator's arenas, handing every charged byte back to the budget.
  auto run_once = [&](const ExecuteRequest& req) {
    MemoryAccount account(governor_.budget(),
                          gov.max_execution_memory_bytes);
    Evaluator eval(prepared.program(), snap);
    eval.set_join_order_hints(prepared.join_order_hints());
    eval.set_memory_account(&account);
    return eval.Run(req);
  };

  ExecuteResult result = run_once(request);
  bool degraded = false;
  if (result.status.code() == StatusCode::kMemoryExceeded &&
      gov.degraded_max_generated_tuples > 0 &&
      (request.limits.max_generated_tuples <= 0 ||
       request.limits.max_generated_tuples >
           gov.degraded_max_generated_tuples)) {
    // Graceful degradation: the first run's arenas are gone (released
    // above), so retry once with a tuple limit small enough to fit — a
    // truncated answer beats none.  The retry can itself abort; its result
    // (including a repeat kMemoryExceeded) is final.
    degraded = true;
    span.Attr("degraded_retry", 1);
    ExecuteRequest tightened = request;
    tightened.limits.max_generated_tuples =
        gov.degraded_max_generated_tuples;
    result = run_once(tightened);
    result.degraded = true;
    // Even a clean retry answered under tighter limits than asked for.
    result.partial = true;
  }
  governor_.RecordOutcome(result.status.code(), degraded);
  return result;
}

ExecuteResult Engine::Query(const ConjunctiveQuery& query,
                            const ExecuteRequest& request, Status* status,
                            const PrepareOptions& prepare_options) {
  PrepareResult prepared = Prepare(query, prepare_options);
  if (status != nullptr) *status = prepared.status;
  if (!prepared.ok()) return {};
  return Execute(*prepared.query, request);
}

uint64_t Engine::ApplyFacts(const FactBatch& batch) {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  snapshot_ = snapshot_->WithFacts(batch);
  return snapshot_->version();
}

std::shared_ptr<const DataSnapshot> Engine::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

}  // namespace owlqr
