#include "engine/plan_cache.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace owlqr {

PreparedQuery::PreparedQuery(NdlProgram program, RewriterKind kind,
                             RewriteDiagnostics diag, std::string cache_key)
    : program_(std::move(program)),
      kind_(kind),
      diag_(std::move(diag)),
      cache_key_(std::move(cache_key)),
      hints_(static_cast<size_t>(program_.num_clauses())) {
  // Force the program's lazy analyses now, single-threaded: executions share
  // this program const and must never trigger a first (mutating) compute.
  if (program_.num_predicates() > 0) program_.ClausesFor(0);
  program_.CachedTopologicalOrder();
  program_.IdbDependencies();
}

namespace {

constexpr uint64_t kFnvBasis = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

void FnvMix(uint64_t* h, uint64_t v) {
  // Byte-wise FNV-1a over the 8 bytes of `v`.
  for (int i = 0; i < 8; ++i) {
    *h ^= (v >> (8 * i)) & 0xFF;
    *h *= kFnvPrime;
  }
}

void FnvMixConcept(uint64_t* h, const BasicConcept& c) {
  FnvMix(h, static_cast<uint64_t>(c.kind));
  FnvMix(h, static_cast<uint64_t>(c.id));
}

}  // namespace

uint64_t FingerprintTBox(const TBox& tbox) {
  uint64_t h = kFnvBasis;
  FnvMix(&h, tbox.concept_inclusions().size());
  for (const ConceptInclusion& ci : tbox.concept_inclusions()) {
    FnvMixConcept(&h, ci.lhs);
    FnvMixConcept(&h, ci.rhs);
  }
  FnvMix(&h, tbox.role_inclusions().size());
  for (const RoleInclusion& ri : tbox.role_inclusions()) {
    FnvMix(&h, static_cast<uint64_t>(ri.lhs));
    FnvMix(&h, static_cast<uint64_t>(ri.rhs));
  }
  FnvMix(&h, tbox.reflexive_roles().size());
  for (RoleId r : tbox.reflexive_roles()) {
    FnvMix(&h, static_cast<uint64_t>(r));
  }
  FnvMix(&h, tbox.concept_disjointness().size());
  for (const ConceptDisjointness& cd : tbox.concept_disjointness()) {
    FnvMixConcept(&h, cd.lhs);
    FnvMixConcept(&h, cd.rhs);
  }
  FnvMix(&h, tbox.role_disjointness().size());
  for (const RoleDisjointness& rd : tbox.role_disjointness()) {
    FnvMix(&h, static_cast<uint64_t>(rd.lhs));
    FnvMix(&h, static_cast<uint64_t>(rd.rhs));
  }
  FnvMix(&h, tbox.irreflexive_roles().size());
  for (RoleId r : tbox.irreflexive_roles()) {
    FnvMix(&h, static_cast<uint64_t>(r));
  }
  return h;
}

std::string CanonicalCqKey(const ConjunctiveQuery& query) {
  const std::vector<CqAtom>& atoms = query.atoms();
  std::vector<int> order(atoms.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    if (atoms[a].kind != atoms[b].kind) return atoms[a].kind < atoms[b].kind;
    return atoms[a].symbol < atoms[b].symbol;
  });

  // Rename variables by first occurrence in the sorted atom list; variables
  // occurring only in the answer tuple (no atoms) get numbered after.
  std::vector<int> rename(query.num_vars(), -1);
  int next = 0;
  auto canon = [&](int var) {
    if (rename[var] < 0) rename[var] = next++;
    return rename[var];
  };

  std::string key;
  key.reserve(atoms.size() * 12);
  for (int i : order) {
    const CqAtom& atom = atoms[i];
    if (atom.kind == CqAtom::Kind::kUnary) {
      key += "U" + std::to_string(atom.symbol) + "(" +
             std::to_string(canon(atom.arg0)) + ")";
    } else {
      key += "B" + std::to_string(atom.symbol) + "(" +
             std::to_string(canon(atom.arg0)) + "," +
             std::to_string(canon(atom.arg1)) + ")";
    }
  }
  key += "|ans:";
  for (int x : query.answer_vars()) {
    key += std::to_string(canon(x)) + ",";
  }
  return key;
}

std::string MakePlanCacheKey(uint64_t tbox_fingerprint,
                             const ConjunctiveQuery& query, RewriterKind kind,
                             const RewriteOptions& options) {
  std::string key = std::to_string(tbox_fingerprint);
  key += "|k" + std::to_string(static_cast<int>(kind));
  key += options.arbitrary_instances ? "|*1" : "|*0";
  key += "|cap" + std::to_string(options.baseline.max_clauses);
  key += "|";
  key += CanonicalCqKey(query);
  return key;
}

PlanCache::PlanCache(size_t capacity) : capacity_(capacity) {
  OWLQR_CHECK_MSG(capacity_ > 0, "plan cache capacity must be positive");
}

std::shared_ptr<const PreparedQuery> PlanCache::Get(const std::string& key,
                                                    bool count_miss) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    if (count_miss) ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void PlanCache::Put(const std::string& key,
                    std::shared_ptr<const PreparedQuery> plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(plan));
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace owlqr
