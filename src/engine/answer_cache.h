#ifndef OWLQR_ENGINE_ANSWER_CACHE_H_
#define OWLQR_ENGINE_ANSWER_CACHE_H_

// Cross-request answer memoization for the serving engine.
//
// The compiled NDL plan is a pure function of (TBox, query) and an
// execution's answer set is a pure function of (plan, snapshot version,
// answer-affecting limits) — so identical requests arriving under real
// traffic can share one evaluation.  Two layers exploit that, both keyed by
// AnswerCacheKey:
//
//   AnswerCache    resolve-before-compute memoization (MemoDB-style):
//                  Engine::Execute consults the cache before admission and
//                  publishes the result of any clean complete run after.
//                  Bounded LRU by entry count and by its own byte cap, with
//                  every entry's bytes charged against the engine memory
//                  budget — so cached answers compete with executions and
//                  retained incremental state for the same budget and are
//                  shed LRU-first under pressure, exactly like
//                  IncrementalStateCache.
//
//   InFlightTable  request coalescing (KataGo-NNEvaluator-style): the first
//                  request for a key becomes the leader and runs; identical
//                  requests arriving while it runs become followers that
//                  block on the leader's shared_future instead of burning
//                  an admission slot and re-running the join DAG.  A leader
//                  that aborts (cancel / memory / deadline / shed)
//                  propagates its failure result to the followers but never
//                  publishes it to the cache.
//
// Only clean complete results are ever cached: partial, degraded,
// truncated or aborted runs would poison every later hit.  Entries carry
// the snapshot version they answer for, so an ApplyFacts can drop every
// entry of an older version in one sweep (they could never hit again — the
// key embeds the version — but they would otherwise hold budget until LRU
// eviction reached them).
//
// All methods of both classes are thread-safe.

#include <cstddef>
#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "ndl/evaluator.h"
#include "util/budget.h"

namespace owlqr {

// The memoization key of one execution: the plan-cache key (already
// TBox-fingerprinted and alpha-renaming-insensitive), the snapshot version
// the run is pinned to, and the limit knobs that can change what a complete
// run answers or how long a coalesced follower may be held
// (max_generated_tuples, max_work, deadline_ms).  num_threads and
// morsel_rows are deliberately excluded: answers do not depend on them, so
// requests differing only there share entries and leaders.
std::string AnswerCacheKey(const std::string& plan_key,
                           uint64_t snapshot_version,
                           const EvaluatorLimits& limits);

// Bounded, budget-charged LRU cache of complete execution results.
class AnswerCache {
 public:
  struct Stats {
    long hits = 0;
    long misses = 0;
    long insertions = 0;
    long evictions = 0;    // Capacity / byte-cap / budget-pressure sheds.
    long invalidated = 0;  // Entries dropped by InvalidateBelow.
  };

  // `capacity` == 0 disables the cache entirely (Get always misses, Put is
  // a no-op).  `max_bytes` == 0 leaves the cache bounded only by `capacity`
  // and budget pressure.  `budget` (nullable) is charged for every resident
  // entry's bytes.
  AnswerCache(size_t capacity, size_t max_bytes, MemoryBudget* budget);
  ~AnswerCache();

  AnswerCache(const AnswerCache&) = delete;
  AnswerCache& operator=(const AnswerCache&) = delete;

  bool enabled() const { return capacity_ > 0; }

  // Returns the cached result (refreshing its recency) or null on a miss.
  std::shared_ptr<const ExecuteResult> Get(const std::string& key);

  // Installs `result` under `key` as most-recently-used, charging its
  // MemoryBytes() to the budget, then evicts LRU-first past the entry
  // capacity, past max_bytes, and while the shared budget is over limit
  // (the fresh entry itself is the last to go).  The caller guarantees the
  // result is clean and complete; replacing an existing key releases the
  // old entry's charge.
  void Put(const std::string& key, uint64_t snapshot_version,
           std::shared_ptr<const ExecuteResult> result);

  // Drops every entry answering for a snapshot version < `version`,
  // releasing its charge.  Called on ApplyFacts with the new head version.
  void InvalidateBelow(uint64_t version);

  void Clear();
  size_t size() const;
  size_t bytes() const;
  size_t capacity() const { return capacity_; }
  Stats stats() const;

 private:
  struct Entry {
    std::string key;
    uint64_t version = 0;
    std::shared_ptr<const ExecuteResult> result;
    size_t bytes = 0;
  };
  void EvictBack();  // Requires mutex_ held.

  const size_t capacity_;
  const size_t max_bytes_;
  MemoryBudget* const budget_;  // Nullable (untracked).
  mutable std::mutex mutex_;
  std::list<Entry> entries_;  // Front = most recently used.
  std::unordered_map<std::string, std::list<Entry>::iterator> by_key_;
  size_t bytes_ = 0;  // Sum of resident entry bytes.
  Stats stats_;
};

// The in-flight executions, keyed like the answer cache.  One leader per
// key runs; followers wait on its future.  The table holds flights by
// shared_ptr so a follower that joined just before the leader finished
// still resolves even though the table entry is already gone.
class InFlightTable {
 public:
  struct Flight {
    std::promise<std::shared_ptr<const ExecuteResult>> promise;
    std::shared_future<std::shared_ptr<const ExecuteResult>> future;
  };
  // leader == true: the caller must run the execution and call Finish with
  // this flight, on every exit path, or followers hang.  leader == false:
  // the caller blocks on flight->future instead of executing.
  struct Ticket {
    std::shared_ptr<Flight> flight;
    bool leader = false;
  };

  InFlightTable() = default;
  InFlightTable(const InFlightTable&) = delete;
  InFlightTable& operator=(const InFlightTable&) = delete;

  // Registers the caller as the leader for `key`, or hands back the
  // already-running leader's flight.
  Ticket JoinOrLead(const std::string& key);

  // Retires the leader's flight: removes it from the table (so the next
  // identical request leads a fresh execution) and resolves the future
  // every follower is blocked on.  `result` may be any outcome, including
  // a shed or aborted one — failure propagates, it is the cache publish
  // (the caller's job, before Finish) that is restricted to clean runs.
  void Finish(const std::string& key, const std::shared_ptr<Flight>& flight,
              std::shared_ptr<const ExecuteResult> result);

  size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;
};

}  // namespace owlqr

#endif  // OWLQR_ENGINE_ANSWER_CACHE_H_
