#ifndef OWLQR_ENGINE_GOVERNOR_H_
#define OWLQR_ENGINE_GOVERNOR_H_

// Resource governance for the serving engine: one QueryGovernor per Engine
// owns the shared memory budget and the admission gate every Execute passes
// through.
//
// Admission is a bounded slot pool with a fair FIFO wait queue: a request
// that finds a free slot (and an empty queue — arrivals never overtake
// waiters) runs immediately; otherwise it waits its turn up to a queue
// timeout and is shed with StatusCode::kRejected when the queue is full or
// the wait times out.  A releasing execution hands its slot directly to the
// front waiter, so a waiter that times out can never strand a slot and the
// queue never reorders.
//
// Memory governance is cooperative: each admitted execution gets a
// MemoryAccount charging the governor's MemoryBudget (util/budget.h); the
// evaluator charges arena growth at its limit-flush cadence and aborts with
// kMemoryExceeded when a charge fails.  Account destruction releases every
// charged byte, so the budget returns to exactly its prior level no matter
// how the execution ended — a quiesced engine accounts to zero.
//
// Everything here is thread-safe; the governor outlives every Admission it
// hands out (both live inside the Engine).

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "util/budget.h"
#include "util/status.h"

namespace owlqr {

struct GovernorOptions {
  // Engine-wide memory budget in bytes for execution-owned allocations
  // (IDB arenas, dedup tables, locally built probe indexes, morsel
  // shards).  0 = track usage but never reject.
  size_t max_memory_bytes = 0;
  // Per-execution cap within the shared budget (0 = no per-execution cap).
  size_t max_execution_memory_bytes = 0;
  // Execution slots; <= 0 = unlimited (admission always succeeds).
  int max_concurrent = 0;
  // Requests allowed to wait for a slot; arrivals beyond this are shed
  // immediately with kRejected.  0 = never queue (reject when saturated).
  size_t max_queue = 64;
  // Default time a request may wait in the queue before being shed;
  // ExecuteRequest::queue_timeout_ms >= 0 overrides per request.
  long queue_timeout_ms = 100;
  // Graceful degradation: when an execution aborts with kMemoryExceeded
  // and asked for more (or unlimited) tuples, retry it once with
  // max_generated_tuples tightened to this value; a successful retry is
  // surfaced with partial=true and degraded=true.  0 = disabled.
  long degraded_max_generated_tuples = 0;
};

class QueryGovernor {
 public:
  // Monotonic counters (served from atomics; a snapshot, not a
  // transaction).  memory_* report the budget's current state.
  struct Counters {
    long admitted = 0;          // Requests that got a slot (queued or not).
    long queued = 0;            // Admitted requests that had to wait.
    long rejected_queue_full = 0;
    long rejected_timeout = 0;
    long cancelled = 0;         // Executions finished with kCancelled.
    long deadline_exceeded = 0;
    long memory_exceeded = 0;   // Final kMemoryExceeded outcomes.
    long degraded_retries = 0;  // Degraded re-runs attempted.
    // Requests resolved without evaluating (and without taking a slot):
    // served out of the engine's answer cache, or coalesced onto an
    // identical in-flight execution as followers of its leader.
    long answer_cache_hits = 0;
    long coalesced = 0;
    size_t memory_used = 0;
    size_t memory_high_water = 0;

    long rejected() const { return rejected_queue_full + rejected_timeout; }
  };

  // One admitted (or shed) request; releasing the slot is the destructor's
  // job, so every exit path of Engine::Execute gives it back.
  class Admission {
   public:
    Admission(Admission&& o) noexcept
        : governor_(o.governor_), status_(std::move(o.status_)) {
      o.governor_ = nullptr;
    }
    Admission& operator=(Admission&&) = delete;
    Admission(const Admission&) = delete;
    Admission& operator=(const Admission&) = delete;
    ~Admission();

    bool admitted() const { return governor_ != nullptr; }
    // kOk when admitted, else the kRejected to return to the caller.
    const Status& status() const { return status_; }

   private:
    friend class QueryGovernor;
    Admission(QueryGovernor* governor, Status status)
        : governor_(governor), status_(std::move(status)) {}

    QueryGovernor* governor_;  // Null = shed (nothing to release).
    Status status_;
  };

  explicit QueryGovernor(const GovernorOptions& options);
  QueryGovernor(const QueryGovernor&) = delete;
  QueryGovernor& operator=(const QueryGovernor&) = delete;

  // Blocks up to the queue timeout (`request_timeout_ms` >= 0 overrides the
  // configured default) waiting for an execution slot.  The returned
  // Admission reports kRejected when the request was shed.
  Admission Admit(long request_timeout_ms = -1);

  // Records how an admitted execution ended (status codes and the degraded
  // flag), for the counters and the metrics registry.
  void RecordOutcome(StatusCode code, bool degraded);

  // Records a request served from the answer cache / coalesced onto an
  // in-flight leader — resolved without admission or evaluation; the two
  // cheap outcomes of Engine::Execute.
  void RecordAnswerCacheHit();
  void RecordCoalesced();

  const GovernorOptions& options() const { return options_; }
  MemoryBudget* budget() { return &budget_; }
  Counters counters() const;

 private:
  // A queued request parked on its own condition_variable; `granted` is the
  // handshake that transfers a slot (set by the releaser, consumed by the
  // waiter — or rolled back by a timed-out waiter that won the race).
  struct Waiter {
    std::condition_variable cv;
    bool granted = false;
  };

  void Release();

  const GovernorOptions options_;
  MemoryBudget budget_;

  std::mutex mu_;
  int in_use_ = 0;               // Slots held (admitted, not yet released).
  std::deque<Waiter*> queue_;    // FIFO; front is next to be granted.

  std::atomic<long> admitted_{0};
  std::atomic<long> queued_{0};
  std::atomic<long> rejected_queue_full_{0};
  std::atomic<long> rejected_timeout_{0};
  std::atomic<long> cancelled_{0};
  std::atomic<long> deadline_exceeded_{0};
  std::atomic<long> memory_exceeded_{0};
  std::atomic<long> degraded_retries_{0};
  std::atomic<long> answer_cache_hits_{0};
  std::atomic<long> coalesced_{0};
};

}  // namespace owlqr

#endif  // OWLQR_ENGINE_GOVERNOR_H_
