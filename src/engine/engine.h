#ifndef OWLQR_ENGINE_ENGINE_H_
#define OWLQR_ENGINE_ENGINE_H_

// The prepared-OMQ engine facade: the one object a service embeds.
//
// An Engine freezes one ontology (TBox copy + rewriting context + axiom
// fingerprint) and one live data snapshot, and serves three thread-safe
// operations:
//
//   Prepare(query)       -> shared PreparedQuery, through the LRU plan
//                           cache: a warm hit returns the compiled plan
//                           without touching the rewrite pipeline at all
//                           (no "rewrite" span in traces).
//   Execute(plan, req)   -> answers + stats, pinned to the snapshot version
//                           current at call time; per-request limits and
//                           thread count come in the ExecuteRequest.
//   ApplyFactsOrError(batch) -> installs a new copy-on-write snapshot version;
//                           executions already running keep the old
//                           version alive via shared_ptr and are unaffected.
//
// Nothing here aborts on bad input: Prepare reports unsupported query
// shapes through PrepareResult::status (see ValidateOmqShape), unlike the
// deprecated RewriteOmq path.
//
// Lifetimes: the Vocabulary passed at construction must outlive the engine
// (the TBox copy, cached programs and prepared queries all reference it);
// the TBox and DataInstance arguments are copied/frozen and may be
// discarded after construction.

#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "core/rewriters.h"
#include "core/rewriting_context.h"
#include "cq/cq.h"
#include "data/data_instance.h"
#include "data/snapshot.h"
#include "data/table_store.h"
#include "engine/answer_cache.h"
#include "engine/governor.h"
#include "engine/plan_cache.h"
#include "ndl/evaluator.h"
#include "ontology/tbox.h"
#include "store/store.h"
#include "util/metrics.h"
#include "util/status.h"

namespace owlqr {

struct EngineOptions {
  // Bounded LRU capacity of the plan cache (number of prepared queries).
  size_t plan_cache_capacity = 64;
  // Resource governance: memory budget, admission control, degradation
  // (engine/governor.h).  The defaults govern nothing (no memory limit, no
  // slot pool), preserving the ungoverned behaviour.
  GovernorOptions governor;
  // Bounded LRU capacity of the retained-IDB-state cache behind
  // ExecuteRequest::incremental (number of plans whose materialised state is
  // kept between executions).  0 disables incremental maintenance entirely;
  // every incremental request then falls back to full evaluation.
  size_t incremental_state_capacity = 8;
  // Bounded LRU capacity of the cross-request answer cache (number of
  // memoized complete results, keyed by plan x snapshot version x limits).
  // 0 (the default) disables answer memoization: every Execute evaluates,
  // matching the other defaults that govern nothing.
  size_t answer_cache_capacity = 0;
  // Byte ceiling across all cached answers (their retained-copy sizes);
  // 0 = no byte cap (the entry-count cap and the memory budget still bound
  // the cache).  Ignored when the cache is disabled.
  size_t answer_cache_max_bytes = 0;
  // Coalesce identical concurrent requests (same plan, snapshot version and
  // limits) onto one evaluation: followers wait on the leader's result
  // instead of burning an admission slot.  Semantics-preserving, so on by
  // default; works with or without the answer cache.
  bool coalesce = true;
  // Entries retained in the per-version delta log that backs incremental
  // execution; ranges trimmed past this force a full-evaluation fallback.
  size_t delta_log_capacity = 64;
  // Durable backend (store/store.h).  Null = in-memory only (the default).
  // A store-backed engine must be created through Engine::Open, which runs
  // recovery; the plain constructor refuses a non-null store.
  std::shared_ptr<store::Store> store;
  // Byte budget for the columns loaded eagerly from a recovered segment;
  // the rest stays cold and faults in on first touch.  0 derives the budget
  // from the governor (half its memory limit), or loads everything when the
  // governor is untracked.
  size_t store_resident_bytes = 0;
};

// LRU cache of retained materialised IDB states, keyed by plan-cache key.
// Each entry's bytes are charged against the engine memory budget for as
// long as the entry lives (Publish charges, eviction / Discard / Clear
// release), so retained state competes with executions for the same budget
// and is shed LRU-first when the budget is over limit.
//
// Checkout REMOVES the entry (transferring its budget charge to the
// caller), so one state is never adopted by two concurrent delta runs; the
// winner publishes the updated state back, everyone else falls back to full
// evaluation.  All methods are thread-safe.
class IncrementalStateCache {
 public:
  IncrementalStateCache(size_t capacity, MemoryBudget* budget);
  ~IncrementalStateCache();

  struct Checkout {
    RetainedIdbState state;    // !valid() on a miss.
    size_t charged_bytes = 0;  // Budget bytes now owed by the caller.
  };
  // Removes and returns the entry for `key`; the caller owes its charge
  // until it calls Publish or Discard.
  Checkout Take(const std::string& key);
  // Installs `state` under `key` as most-recently-used, settling the
  // caller's outstanding charge to the state's current size, then evicts:
  // LRU past `capacity`, and LRU-first while the budget is over limit (the
  // fresh entry itself is the last to go).
  void Publish(const std::string& key, RetainedIdbState state,
               size_t charged_bytes);
  // Releases a checked-out charge whose state will not be published.
  void Discard(size_t charged_bytes);
  void Clear();
  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::string key;
    RetainedIdbState state;
    size_t bytes = 0;
  };
  void EvictBack();  // Requires mutex_ held.

  const size_t capacity_;
  MemoryBudget* const budget_;  // Nullable (untracked).
  mutable std::mutex mutex_;
  std::list<Entry> entries_;  // Front = most recently used.
  std::unordered_map<std::string, std::list<Entry>::iterator> by_key_;
};

struct PrepareOptions {
  PrepareOptions() { rewrite.arbitrary_instances = true; }

  // Pick the rewriter from the OMQ's profile (RecommendedRewriter); set to
  // false to force `kind`.
  bool auto_kind = true;
  RewriterKind kind = RewriterKind::kTw;
  // Engine default differs from the raw rewriters: arbitrary_instances is
  // on, because a served data instance is updatable and thus not complete.
  RewriteOptions rewrite;
};

struct PrepareResult {
  Status status;
  // Null iff !status.ok().
  std::shared_ptr<const PreparedQuery> query;
  // True when the plan came from the cache (the rewrite pipeline did not
  // run).
  bool cache_hit = false;

  bool ok() const { return status.ok(); }
};

class Engine {
 public:
  // `tbox` is copied and normalized; `data` (and `tables`, if given) is
  // frozen into snapshot version 1.  Refuses (CHECK) a non-null
  // options.store — durable engines go through Open.
  Engine(const TBox& tbox, const DataInstance& data,
         const TableStore* tables = nullptr,
         const EngineOptions& options = {});

  // The store-aware factory.  Without a store it behaves exactly like the
  // constructor.  With one, it runs recovery first: a fresh store is seeded
  // with a checkpoint of `data` (seed failure fails Open — facts must never
  // be acknowledged without a durable baseline); an existing store rebuilds
  // its base snapshot from the newest segment and replays the log tail
  // through the normal ApplyFacts delta path, so restart cost is
  // O(segment load + log tail), `data` is ignored, and the incremental /
  // answer caches see ordinary versioned updates.  Returns null iff
  // *status is non-OK.  `tables` with a store is unsupported
  // (kInvalidArgument): source tables live outside the store's fact model.
  static std::unique_ptr<Engine> Open(const TBox& tbox,
                                      const DataInstance& data,
                                      const TableStore* tables,
                                      const EngineOptions& options,
                                      Status* status);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Compiles (or fetches from the plan cache) the query's NDL plan.
  // Thread-safe; concurrent Prepare calls of the same key rewrite at most
  // once.  Shape errors come back in the status, never as an abort.
  PrepareResult Prepare(const ConjunctiveQuery& query,
                        const PrepareOptions& options = {});

  // Runs `prepared` against the current snapshot under the request's
  // limits.  Thread-safe; any number of executions (same or different
  // plans) may run concurrently with each other and with ApplyFacts.  The
  // result carries the snapshot version the run was pinned to.
  //
  // Every call passes through the governor: admission control first (a shed
  // request returns immediately with StatusCode::kRejected and no answers),
  // then evaluation under a MemoryAccount charging the engine budget and
  // the request's cancel token / deadline — aborts surface as kCancelled /
  // kMemoryExceeded / kDeadlineExceeded with partial=true.  When degraded
  // retries are configured, a memory-aborted run is re-run once with
  // tightened limits and surfaced with degraded=true.
  //
  // With the answer cache enabled, a memoized complete result for the same
  // (plan, snapshot version, limits) is returned directly — byte-identical
  // answers, cached=true, no admission slot taken.  With coalescing on, an
  // identical request already evaluating makes this call a follower: it
  // waits for the leader's result and returns a copy with coalesced=true.
  // Partial, degraded and aborted results are never memoized.
  ExecuteResult Execute(const PreparedQuery& prepared,
                        const ExecuteRequest& request = {}) const;

  // Prepare + Execute in one call, for one-shot queries.  On prepare
  // failure, returns an empty result and sets *status (nullable).
  ExecuteResult Query(const ConjunctiveQuery& query,
                      const ExecuteRequest& request = {},
                      Status* status = nullptr,
                      const PrepareOptions& prepare_options = {});

  // Installs a new snapshot version extended by `batch` (copy-on-write per
  // touched relation) and returns its version through `version` (nullable).
  // In-flight executions keep the version they pinned.  Plans stay valid:
  // the cache key depends only on the TBox, not the data.
  //
  // The batch is validated against the engine's vocabulary first: a
  // concept / role / individual id that is negative or was never interned
  // returns kInvalidArgument and installs NOTHING — previously such facts
  // silently created orphan relations no rewriting could ever name.  A
  // batch whose facts are all already present is a no-op: the version does
  // not change and no snapshot is built.
  //
  // The expensive copy-on-write build runs OUTSIDE the snapshot lock, so
  // concurrent Execute calls pin snapshots without waiting behind a large
  // update; concurrent ApplyFacts calls serialise among themselves.
  Status ApplyFactsOrError(const FactBatch& batch,
                           uint64_t* version = nullptr);

  // Forces a store checkpoint of the current snapshot (segment write +
  // CURRENT switch + log reset).  Serialises with ApplyFacts.  Errors are
  // non-fatal to serving — the previous segment and log still recover.
  // kInvalidArgument when the engine has no store.
  Status Checkpoint();

  // Drops every retained incremental IDB state, releasing its memory-budget
  // charge.  Subsequent incremental executions re-seed from a full run.
  void ClearIncrementalState() const;
  size_t incremental_state_size() const { return incremental_.size(); }

  // Drops every memoized answer, releasing its memory-budget charge.
  void ClearAnswerCache() const { answer_cache_.Clear(); }
  AnswerCache::Stats answer_cache_stats() const {
    return answer_cache_.stats();
  }
  size_t answer_cache_size() const { return answer_cache_.size(); }
  size_t answer_cache_bytes() const { return answer_cache_.bytes(); }

  // The snapshot a new execution would pin right now.
  std::shared_ptr<const DataSnapshot> snapshot() const;
  uint64_t snapshot_version() const { return snapshot()->version(); }

  const TBox& tbox() const { return tbox_; }
  // Read-only reasoning state, e.g. for ProfileOmq.  Do not use concurrently
  // with Prepare (which may grow the context's word table); Prepare's own
  // internal reads are synchronized via ctx_mutex_.
  const RewritingContext& context() const { return ctx_; }
  Vocabulary* vocabulary() const { return tbox_.vocabulary(); }
  uint64_t tbox_fingerprint() const { return fingerprint_; }
  PlanCache::Stats cache_stats() const { return cache_.stats(); }
  size_t cache_size() const { return cache_.size(); }
  // Admission / memory / outcome counters (engine/governor.h); memory_used
  // returns to zero once every execution has finished.
  QueryGovernor::Counters governor_counters() const {
    return governor_.counters();
  }
  // Null for in-memory engines.
  const std::shared_ptr<store::Store>& store() const { return store_; }
  // End-to-end Open recovery wall time (store load + log-tail replay);
  // 0 for in-memory engines and fresh stores.
  double recovery_ms() const { return recovery_ms_; }

 private:
  // Shared guts of the constructor and Open: `normalized` is already the
  // engine's own normalized TBox copy, `snapshot` its initial data version
  // (frozen instance or recovered segment).
  Engine(TBox normalized, std::shared_ptr<const DataSnapshot> snapshot,
         const EngineOptions& options);

  // The body of ApplyFactsOrError.  With `persist`, the delta is appended
  // (and fsynced) to the store BETWEEN the copy-on-write build and the
  // install — an append failure leaves the engine on the old version, so a
  // version is acknowledged iff it is durable — and a post-install
  // ShouldCompact triggers an inline checkpoint (failure counted, not
  // surfaced).  Recovery replays log records with persist=false: they are
  // already durable.
  Status ApplyFactsInternal(const FactBatch& batch, uint64_t* version,
                            bool persist);

  // One recorded ApplyFacts step: the delta that took snapshot version
  // `version - 1` to `version`.
  struct DeltaLogEntry {
    uint64_t version = 0;
    SnapshotDelta delta;
  };

  // Composes the deltas taking version `from` to version `to` into `out`.
  // False when the range has been trimmed out of the bounded log (the
  // caller must fall back to full evaluation).
  bool DeltaBetween(uint64_t from, uint64_t to, SnapshotDelta* out) const;
  // The incremental Execute path: checkout retained state, catch it up via
  // RunDelta, publish it back.  False (with the checkout discarded) on any
  // miss / version gap / abort, in which case the caller runs the full
  // path.  May re-pin `*snap` forward if the retained state is newer.
  bool ExecuteIncremental(const PreparedQuery& prepared,
                          const ExecuteRequest& request,
                          std::shared_ptr<const DataSnapshot>* snap,
                          ExecuteResult* result) const;
  // The governed evaluation core of Execute: admission, snapshot pinning
  // (reuses `snap` when the memoization front-end already pinned one),
  // incremental path, full evaluation, degraded retry.  Everything except
  // the answer-cache / coalescing front-end that wraps it.
  ExecuteResult ExecuteGoverned(const PreparedQuery& prepared,
                                const ExecuteRequest& request,
                                std::shared_ptr<const DataSnapshot> snap,
                                ScopedSpan* span) const;

  // White-box access for tests (delta-log edge cases, incremental re-pin).
  friend class EngineTestPeer;

  TBox tbox_;  // Engine's own normalized copy.
  RewritingContext ctx_;
  const uint64_t fingerprint_;
  PlanCache cache_;
  // Serializes cache-miss compilation: the rewriting context's word table
  // is mutated during rewriting, so only one rewrite may run at a time
  // (cache hits and executions never take this).
  std::mutex prepare_mutex_;
  // Reader/writer guard on ctx_'s mutable reasoning state: rewrites (which
  // grow the word table) take it exclusively; ProfileOmq-style read-only
  // probes take it shared.  Without it, Prepare's pre-lock profile raced a
  // concurrent cache-miss rewrite's word-table growth.
  mutable std::shared_mutex ctx_mutex_;
  // Serializes the build phase of ApplyFacts (one in-flight WithFacts at a
  // time keeps versions monotone and the delta log gap-free) without
  // blocking snapshot readers, who only ever take snapshot_mutex_.
  std::mutex apply_mutex_;
  mutable std::mutex snapshot_mutex_;  // Guards snapshot_ and delta_log_.
  std::shared_ptr<const DataSnapshot> snapshot_;
  // Recent per-version deltas, ascending and gap-free in version (every
  // non-no-op ApplyFacts appends exactly one entry), trimmed from the front
  // at a fixed cap.  Incremental executions replay the range between their
  // retained state's version and the pinned snapshot's.
  std::deque<DeltaLogEntry> delta_log_;
  // Mutable because Execute is const (it mutates no engine-visible state;
  // the governor's slots/counters are bookkeeping).
  mutable QueryGovernor governor_;
  // Retained IDB states for incremental execution; mutable for the same
  // reason as the governor (a cache, not engine-visible semantics).
  mutable IncrementalStateCache incremental_;
  // Cross-request answer memoization and in-flight coalescing (mutable for
  // the same reason: caches, not engine-visible semantics).
  mutable AnswerCache answer_cache_;
  mutable InFlightTable inflight_;
  const bool coalesce_;
  const size_t delta_log_capacity_;
  // Durable backend; appends/checkpoints run under apply_mutex_, reads of
  // its counters are internally synchronized.  Null = in-memory engine.
  const std::shared_ptr<store::Store> store_;
  double recovery_ms_ = 0;  // Set once by Open, before any concurrency.
};

}  // namespace owlqr

#endif  // OWLQR_ENGINE_ENGINE_H_
