#ifndef OWLQR_ENGINE_ENGINE_H_
#define OWLQR_ENGINE_ENGINE_H_

// The prepared-OMQ engine facade: the one object a service embeds.
//
// An Engine freezes one ontology (TBox copy + rewriting context + axiom
// fingerprint) and one live data snapshot, and serves three thread-safe
// operations:
//
//   Prepare(query)       -> shared PreparedQuery, through the LRU plan
//                           cache: a warm hit returns the compiled plan
//                           without touching the rewrite pipeline at all
//                           (no "rewrite" span in traces).
//   Execute(plan, req)   -> answers + stats, pinned to the snapshot version
//                           current at call time; per-request limits and
//                           thread count come in the ExecuteRequest.
//   ApplyFacts(batch)    -> installs a new copy-on-write snapshot version;
//                           executions already running keep the old
//                           version alive via shared_ptr and are unaffected.
//
// Nothing here aborts on bad input: Prepare reports unsupported query
// shapes through PrepareResult::status (see ValidateOmqShape), unlike the
// deprecated RewriteOmq path.
//
// Lifetimes: the Vocabulary passed at construction must outlive the engine
// (the TBox copy, cached programs and prepared queries all reference it);
// the TBox and DataInstance arguments are copied/frozen and may be
// discarded after construction.

#include <cstdint>
#include <memory>
#include <mutex>

#include "core/rewriters.h"
#include "core/rewriting_context.h"
#include "cq/cq.h"
#include "data/data_instance.h"
#include "data/snapshot.h"
#include "data/table_store.h"
#include "engine/governor.h"
#include "engine/plan_cache.h"
#include "ndl/evaluator.h"
#include "ontology/tbox.h"
#include "util/status.h"

namespace owlqr {

struct EngineOptions {
  // Bounded LRU capacity of the plan cache (number of prepared queries).
  size_t plan_cache_capacity = 64;
  // Resource governance: memory budget, admission control, degradation
  // (engine/governor.h).  The defaults govern nothing (no memory limit, no
  // slot pool), preserving the ungoverned behaviour.
  GovernorOptions governor;
};

struct PrepareOptions {
  PrepareOptions() { rewrite.arbitrary_instances = true; }

  // Pick the rewriter from the OMQ's profile (RecommendedRewriter); set to
  // false to force `kind`.
  bool auto_kind = true;
  RewriterKind kind = RewriterKind::kTw;
  // Engine default differs from the raw rewriters: arbitrary_instances is
  // on, because a served data instance is updatable and thus not complete.
  RewriteOptions rewrite;
};

struct PrepareResult {
  Status status;
  // Null iff !status.ok().
  std::shared_ptr<const PreparedQuery> query;
  // True when the plan came from the cache (the rewrite pipeline did not
  // run).
  bool cache_hit = false;

  bool ok() const { return status.ok(); }
};

class Engine {
 public:
  // `tbox` is copied and normalized; `data` (and `tables`, if given) is
  // frozen into snapshot version 1.
  Engine(const TBox& tbox, const DataInstance& data,
         const TableStore* tables = nullptr,
         const EngineOptions& options = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Compiles (or fetches from the plan cache) the query's NDL plan.
  // Thread-safe; concurrent Prepare calls of the same key rewrite at most
  // once.  Shape errors come back in the status, never as an abort.
  PrepareResult Prepare(const ConjunctiveQuery& query,
                        const PrepareOptions& options = {});

  // Runs `prepared` against the current snapshot under the request's
  // limits.  Thread-safe; any number of executions (same or different
  // plans) may run concurrently with each other and with ApplyFacts.  The
  // result carries the snapshot version the run was pinned to.
  //
  // Every call passes through the governor: admission control first (a shed
  // request returns immediately with StatusCode::kRejected and no answers),
  // then evaluation under a MemoryAccount charging the engine budget and
  // the request's cancel token / deadline — aborts surface as kCancelled /
  // kMemoryExceeded / kDeadlineExceeded with partial=true.  When degraded
  // retries are configured, a memory-aborted run is re-run once with
  // tightened limits and surfaced with degraded=true.
  ExecuteResult Execute(const PreparedQuery& prepared,
                        const ExecuteRequest& request = {}) const;

  // Prepare + Execute in one call, for one-shot queries.  On prepare
  // failure, returns an empty result and sets *status (nullable).
  ExecuteResult Query(const ConjunctiveQuery& query,
                      const ExecuteRequest& request = {},
                      Status* status = nullptr,
                      const PrepareOptions& prepare_options = {});

  // Installs a new snapshot version extended by `batch` (copy-on-write per
  // touched relation) and returns its version.  In-flight executions keep
  // the version they pinned.  Plans stay valid: the cache key depends only
  // on the TBox, not the data.
  uint64_t ApplyFacts(const FactBatch& batch);

  // The snapshot a new execution would pin right now.
  std::shared_ptr<const DataSnapshot> snapshot() const;
  uint64_t snapshot_version() const { return snapshot()->version(); }

  const TBox& tbox() const { return tbox_; }
  // Read-only reasoning state, e.g. for ProfileOmq.  Do not use concurrently
  // with Prepare (which may grow the context's word table).
  const RewritingContext& context() const { return ctx_; }
  Vocabulary* vocabulary() const { return tbox_.vocabulary(); }
  uint64_t tbox_fingerprint() const { return fingerprint_; }
  PlanCache::Stats cache_stats() const { return cache_.stats(); }
  size_t cache_size() const { return cache_.size(); }
  // Admission / memory / outcome counters (engine/governor.h); memory_used
  // returns to zero once every execution has finished.
  QueryGovernor::Counters governor_counters() const {
    return governor_.counters();
  }

 private:
  TBox tbox_;  // Engine's own normalized copy.
  RewritingContext ctx_;
  const uint64_t fingerprint_;
  PlanCache cache_;
  // Serializes cache-miss compilation: the rewriting context's word table
  // is mutated during rewriting, so only one rewrite may run at a time
  // (cache hits and executions never take this).
  std::mutex prepare_mutex_;
  mutable std::mutex snapshot_mutex_;  // Guards the `snapshot_` pointer.
  std::shared_ptr<const DataSnapshot> snapshot_;
  // Mutable because Execute is const (it mutates no engine-visible state;
  // the governor's slots/counters are bookkeeping).
  mutable QueryGovernor governor_;
};

}  // namespace owlqr

#endif  // OWLQR_ENGINE_ENGINE_H_
