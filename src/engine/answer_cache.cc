#include "engine/answer_cache.h"

#include <utility>

#include "util/metrics.h"

namespace owlqr {

std::string AnswerCacheKey(const std::string& plan_key,
                           uint64_t snapshot_version,
                           const EvaluatorLimits& limits) {
  std::string key = plan_key;
  key += '\x1f';
  key += std::to_string(snapshot_version);
  key += "|g";
  key += std::to_string(limits.max_generated_tuples);
  key += "|w";
  key += std::to_string(limits.max_work);
  key += "|d";
  key += std::to_string(limits.deadline_ms);
  return key;
}

AnswerCache::AnswerCache(size_t capacity, size_t max_bytes,
                         MemoryBudget* budget)
    : capacity_(capacity), max_bytes_(max_bytes), budget_(budget) {}

AnswerCache::~AnswerCache() { Clear(); }

std::shared_ptr<const ExecuteResult> AnswerCache::Get(const std::string& key) {
  if (capacity_ == 0) return nullptr;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_key_.find(key);
  if (it == by_key_.end()) {
    ++stats_.misses;
    OWLQR_COUNT("engine/answer_cache_miss", 1);
    return nullptr;
  }
  entries_.splice(entries_.begin(), entries_, it->second);
  ++stats_.hits;
  OWLQR_COUNT("engine/answer_cache_hit", 1);
  return it->second->result;
}

void AnswerCache::Put(const std::string& key, uint64_t snapshot_version,
                      std::shared_ptr<const ExecuteResult> result) {
  if (capacity_ == 0 || result == nullptr) return;
  const size_t bytes = result->MemoryBytes();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    // Racing publishers of the same key (two leaders can exist for one key
    // when coalescing is off): the old entry is replaced, charge released.
    if (budget_ != nullptr) budget_->Release(it->second->bytes);
    bytes_ -= it->second->bytes;
    entries_.erase(it->second);
    by_key_.erase(it);
  }
  if (budget_ != nullptr) budget_->Charge(bytes);
  bytes_ += bytes;
  entries_.push_front(Entry{key, snapshot_version, std::move(result), bytes});
  by_key_[key] = entries_.begin();
  ++stats_.insertions;
  OWLQR_COUNT("engine/answer_cache_insert", 1);
  while (entries_.size() > capacity_) EvictBack();
  if (max_bytes_ > 0) {
    while (bytes_ > max_bytes_ && entries_.size() > 1) EvictBack();
  }
  // Budget pressure sheds cached answers LRU-first: executions' live arenas
  // matter more than our copies, and the entry just published goes last.
  if (budget_ != nullptr && budget_->limit() > 0) {
    while (budget_->used() > budget_->limit() && !entries_.empty()) {
      EvictBack();
    }
  }
}

void AnswerCache::InvalidateBelow(uint64_t version) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->version >= version) {
      ++it;
      continue;
    }
    if (budget_ != nullptr) budget_->Release(it->bytes);
    bytes_ -= it->bytes;
    by_key_.erase(it->key);
    it = entries_.erase(it);
    ++stats_.invalidated;
  }
}

void AnswerCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  while (!entries_.empty()) EvictBack();
}

size_t AnswerCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

size_t AnswerCache::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

AnswerCache::Stats AnswerCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void AnswerCache::EvictBack() {
  if (budget_ != nullptr) budget_->Release(entries_.back().bytes);
  bytes_ -= entries_.back().bytes;
  by_key_.erase(entries_.back().key);
  entries_.pop_back();
  ++stats_.evictions;
}

InFlightTable::Ticket InFlightTable::JoinOrLead(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = flights_.find(key);
  if (it != flights_.end()) return Ticket{it->second, /*leader=*/false};
  auto flight = std::make_shared<Flight>();
  flight->future = flight->promise.get_future().share();
  flights_.emplace(key, flight);
  return Ticket{std::move(flight), /*leader=*/true};
}

void InFlightTable::Finish(const std::string& key,
                           const std::shared_ptr<Flight>& flight,
                           std::shared_ptr<const ExecuteResult> result) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = flights_.find(key);
    // Erase only our own flight: set-value below wakes exactly the
    // followers that joined it, never a successor leader's.
    if (it != flights_.end() && it->second == flight) flights_.erase(it);
  }
  flight->promise.set_value(std::move(result));
}

size_t InFlightTable::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return flights_.size();
}

}  // namespace owlqr
