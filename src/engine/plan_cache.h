#ifndef OWLQR_ENGINE_PLAN_CACHE_H_
#define OWLQR_ENGINE_PLAN_CACHE_H_

// The prepared-query plan cache of the engine facade.
//
// A PreparedQuery bundles everything the rewrite/compile pipeline produces
// for one OMQ so repeated executions skip it entirely: the NDL program with
// its analyses (clause index, topological order, IDB dependency edges)
// pre-warmed, the rewrite diagnostics, and the shared join-order hint slots
// the first execution fills in.  Prepared queries are immutable after
// construction (the hint slots are write-once via once_flag) and handed out
// as shared_ptr, so a query evicted from the cache stays valid for callers
// still holding it.
//
// The PlanCache is a bounded LRU keyed by
//   (TBox fingerprint, rewriter kind, rewrite options, canonical CQ form)
// serialized into one string; see MakePlanCacheKey.  The TBox fingerprint
// makes plans from different ontologies (or an edited ontology) miss instead
// of aliasing; the canonical CQ form makes alpha-renamed copies of the same
// query hit.

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/rewriters.h"
#include "cq/cq.h"
#include "ndl/evaluator.h"
#include "ndl/program.h"
#include "ontology/tbox.h"

namespace owlqr {

// One compiled OMQ: the chosen rewriter's NDL program plus everything an
// execution needs that does not depend on the data snapshot.
class PreparedQuery {
 public:
  // Takes ownership of `program`; pre-warms its lazy analyses so concurrent
  // executions only ever read them.
  PreparedQuery(NdlProgram program, RewriterKind kind,
                RewriteDiagnostics diag, std::string cache_key);

  PreparedQuery(const PreparedQuery&) = delete;
  PreparedQuery& operator=(const PreparedQuery&) = delete;

  const NdlProgram& program() const { return program_; }
  RewriterKind kind() const { return kind_; }
  const RewriteDiagnostics& diag() const { return diag_; }
  const std::string& cache_key() const { return cache_key_; }

  // Shared join-order capture slots (see JoinOrderHints): logically part of
  // the plan, filled by the first execution of each clause.
  JoinOrderHints* join_order_hints() const { return &hints_; }

 private:
  NdlProgram program_;
  RewriterKind kind_;
  RewriteDiagnostics diag_;
  std::string cache_key_;
  mutable JoinOrderHints hints_;
};

// FNV-1a fingerprint of every axiom of a (normalized) TBox.  Two TBoxes
// with the same axioms over the same vocabulary ids collide by design —
// their rewritings are interchangeable; any edit (added/removed/reordered
// axiom) changes the fingerprint.
uint64_t FingerprintTBox(const TBox& tbox);

// A canonical serialization of `query`: atoms stable-sorted by
// (kind, symbol), variables renamed by first occurrence in the sorted atom
// list, answer variables appended in answer order.  Alpha-renamed copies of
// a query map to the same key; distinct queries never collide (the
// serialization is injective on the renamed form).  Queries that differ only
// by reordering same-symbol atoms may map to different keys — that is a
// spurious cache miss, never a wrong hit.
std::string CanonicalCqKey(const ConjunctiveQuery& query);

// The full cache key: fingerprint, kind, the option bits that change the
// produced program, and the canonical CQ form.
std::string MakePlanCacheKey(uint64_t tbox_fingerprint,
                             const ConjunctiveQuery& query, RewriterKind kind,
                             const RewriteOptions& options);

// Bounded, thread-safe LRU cache of prepared queries.
class PlanCache {
 public:
  struct Stats {
    long hits = 0;
    long misses = 0;
    long evictions = 0;
  };

  explicit PlanCache(size_t capacity);

  // Returns the cached plan and refreshes its recency, or null on miss.
  // `count_miss` is false for the double-checked lookup under the compile
  // lock, so one logical prepare never counts two misses.
  std::shared_ptr<const PreparedQuery> Get(const std::string& key,
                                           bool count_miss = true);

  // Inserts (or replaces) the plan under `key`, evicting the least recently
  // used entry if the cache is over capacity.
  void Put(const std::string& key, std::shared_ptr<const PreparedQuery> plan);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  Stats stats() const;

 private:
  using Entry = std::pair<std::string, std::shared_ptr<const PreparedQuery>>;

  const size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // Front = most recently used.
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace owlqr

#endif  // OWLQR_ENGINE_PLAN_CACHE_H_
