#include "engine/governor.h"

#include <algorithm>
#include <chrono>

#include "util/metrics.h"

namespace owlqr {

QueryGovernor::QueryGovernor(const GovernorOptions& options)
    : options_(options), budget_(options.max_memory_bytes) {}

QueryGovernor::Admission QueryGovernor::Admit(long request_timeout_ms) {
  if (options_.max_concurrent <= 0) {
    admitted_.fetch_add(1, std::memory_order_relaxed);
    OWLQR_COUNT("governor/admitted", 1);
    return Admission(this, Status::Ok());
  }
  const long timeout_ms = request_timeout_ms >= 0 ? request_timeout_ms
                                                  : options_.queue_timeout_ms;
  std::unique_lock<std::mutex> lock(mu_);
  // Free slot and nobody ahead of us: run now.  The queue-empty check keeps
  // admission FIFO — a fresh arrival must not overtake a waiter that a
  // concurrent Release is about to wake.
  if (in_use_ < options_.max_concurrent && queue_.empty()) {
    ++in_use_;
    lock.unlock();
    admitted_.fetch_add(1, std::memory_order_relaxed);
    OWLQR_COUNT("governor/admitted", 1);
    return Admission(this, Status::Ok());
  }
  if (timeout_ms <= 0 || queue_.size() >= options_.max_queue) {
    lock.unlock();
    rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
    OWLQR_COUNT("governor/rejected", 1);
    return Admission(nullptr,
                     Status::Rejected(timeout_ms <= 0
                                          ? "engine saturated (no queueing)"
                                          : "admission queue full"));
  }

  Waiter waiter;
  queue_.push_back(&waiter);
  queued_.fetch_add(1, std::memory_order_relaxed);
  OWLQR_COUNT("governor/queued", 1);
  const auto wait_start = std::chrono::steady_clock::now();
  const auto deadline = wait_start + std::chrono::milliseconds(timeout_ms);
  while (!waiter.granted) {
    if (waiter.cv.wait_until(lock, deadline) == std::cv_status::timeout &&
        !waiter.granted) {
      // Shed: remove ourselves so the line does not stall behind a corpse.
      queue_.erase(std::find(queue_.begin(), queue_.end(), &waiter));
      lock.unlock();
      rejected_timeout_.fetch_add(1, std::memory_order_relaxed);
      OWLQR_COUNT("governor/rejected", 1);
      return Admission(nullptr, Status::Rejected("admission queue timeout"));
    }
  }
  // Granted: the releaser already popped us and left its slot to us
  // (in_use_ unchanged across the handoff).
  lock.unlock();
  if (OWLQR_METRICS_ENABLED()) {
    double wait_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - wait_start)
                         .count();
    OWLQR_RECORD("governor/queue_wait_ms", wait_ms);
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  OWLQR_COUNT("governor/admitted", 1);
  return Admission(this, Status::Ok());
}

void QueryGovernor::Release() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!queue_.empty()) {
    // Hand the slot straight to the front waiter: in_use_ stays put, the
    // grant flag marks the transfer, and FIFO order is preserved because
    // only the releaser ever pops.
    Waiter* next = queue_.front();
    queue_.pop_front();
    next->granted = true;
    // Notify under the lock: the waiter owns the Waiter on its stack and
    // may destroy it the moment it observes `granted` after we unlock.
    next->cv.notify_one();
    return;
  }
  --in_use_;
}

QueryGovernor::Admission::~Admission() {
  if (governor_ != nullptr && governor_->options_.max_concurrent > 0) {
    governor_->Release();
  }
}

void QueryGovernor::RecordOutcome(StatusCode code, bool degraded) {
  switch (code) {
    case StatusCode::kCancelled:
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      OWLQR_COUNT("governor/cancelled", 1);
      break;
    case StatusCode::kDeadlineExceeded:
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      OWLQR_COUNT("governor/deadline_exceeded", 1);
      break;
    case StatusCode::kMemoryExceeded:
      memory_exceeded_.fetch_add(1, std::memory_order_relaxed);
      OWLQR_COUNT("governor/memory_exceeded", 1);
      break;
    default:
      break;
  }
  if (degraded) {
    degraded_retries_.fetch_add(1, std::memory_order_relaxed);
    OWLQR_COUNT("governor/degraded_retries", 1);
  }
}

void QueryGovernor::RecordAnswerCacheHit() {
  answer_cache_hits_.fetch_add(1, std::memory_order_relaxed);
  OWLQR_COUNT("governor/answer_cache_hits", 1);
}

void QueryGovernor::RecordCoalesced() {
  coalesced_.fetch_add(1, std::memory_order_relaxed);
  OWLQR_COUNT("governor/coalesced", 1);
}

QueryGovernor::Counters QueryGovernor::counters() const {
  Counters c;
  c.admitted = admitted_.load(std::memory_order_relaxed);
  c.queued = queued_.load(std::memory_order_relaxed);
  c.rejected_queue_full =
      rejected_queue_full_.load(std::memory_order_relaxed);
  c.rejected_timeout = rejected_timeout_.load(std::memory_order_relaxed);
  c.cancelled = cancelled_.load(std::memory_order_relaxed);
  c.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  c.memory_exceeded = memory_exceeded_.load(std::memory_order_relaxed);
  c.degraded_retries = degraded_retries_.load(std::memory_order_relaxed);
  c.answer_cache_hits = answer_cache_hits_.load(std::memory_order_relaxed);
  c.coalesced = coalesced_.load(std::memory_order_relaxed);
  c.memory_used = budget_.used();
  c.memory_high_water = budget_.high_water();
  return c;
}

}  // namespace owlqr
