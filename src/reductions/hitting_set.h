#ifndef OWLQR_REDUCTIONS_HITTING_SET_H_
#define OWLQR_REDUCTIONS_HITTING_SET_H_

#include <memory>
#include <vector>

#include "cq/cq.h"
#include "data/data_instance.h"
#include "ontology/tbox.h"

namespace owlqr {

// A hypergraph with vertices 1..num_vertices and hyperedges over them.
struct Hypergraph {
  int num_vertices = 0;
  std::vector<std::vector<int>> edges;
};

// The Theorem 15 reduction (W[2]-hardness of pDepth-TreeOMQ): an OMQ
// (T^k_H, q^k_H) with a depth-Theta(k) ontology and a star-shaped Boolean CQ
// such that T^k_H, {V^0_0(a)} |= q^k_H iff H has a hitting set of size k.
struct HittingSetOmq {
  std::unique_ptr<TBox> tbox;
  ConjunctiveQuery query;
  DataInstance data;  // {V^0_0(a)}.
};

HittingSetOmq MakeHittingSetOmq(Vocabulary* vocab, const Hypergraph& h, int k);

// Brute-force reference: does H have a hitting set of size exactly k?
bool HasHittingSet(const Hypergraph& h, int k);

}  // namespace owlqr

#endif  // OWLQR_REDUCTIONS_HITTING_SET_H_
