#include "reductions/hardest_logcfl.h"

#include <functional>
#include <vector>

#include "util/logging.h"

namespace owlqr {

namespace {

// Character classes of Sigma.  The base alphabet Sigma_0 = {a, b, c, d}
// stands for {a1, b1, a2, b2}.
bool IsBase(char c) { return c == 'a' || c == 'b' || c == 'c' || c == 'd'; }

// Readable predicate-name fragment per character.
std::string CharName(char c) {
  switch (c) {
    case 'a':
      return "a1";
    case 'b':
      return "b1";
    case 'c':
      return "a2";
    case 'd':
      return "b2";
    case '[':
      return "ob";
    case ']':
      return "cb";
    case '#':
      return "hash";
  }
  OWLQR_CHECK_MSG(false, "invalid Sigma character");
  return "";
}

}  // namespace

bool IsValidSigmaWord(std::string_view word) {
  for (char c : word) {
    if (!IsBase(c) && c != '[' && c != ']' && c != '#') return false;
  }
  return true;
}

bool IsBlockFormed(std::string_view word) {
  if (word.empty() || word.front() != '[' || word.back() != ']') return false;
  bool inside = false;
  int content = 0;
  for (size_t i = 0; i < word.size(); ++i) {
    char c = word[i];
    if (c == '[') {
      if (inside) return false;  // No '[' before the matching ']'.
      // Each non-final ']' must be followed immediately by '[': equivalently
      // '[' occurs at the start or right after ']'.
      if (i > 0 && word[i - 1] != ']') return false;
      inside = true;
      content = 0;
    } else if (c == ']') {
      if (!inside || content == 0) return false;
      inside = false;
    } else {
      if (!inside) return false;
      ++content;
    }
  }
  return !inside;
}

bool InBaseLanguage(std::string_view word) {
  std::vector<char> stack;
  for (char c : word) {
    switch (c) {
      case 'a':
      case 'c':
        stack.push_back(c);
        break;
      case 'b':
        if (stack.empty() || stack.back() != 'a') return false;
        stack.pop_back();
        break;
      case 'd':
        if (stack.empty() || stack.back() != 'c') return false;
        stack.pop_back();
        break;
      default:
        return false;
    }
  }
  return stack.empty();
}

bool InHardestLanguage(std::string_view word) {
  if (!IsValidSigmaWord(word) || !IsBlockFormed(word)) return false;
  // Parse blocks into their '#'-separated choices.
  std::vector<std::vector<std::string>> blocks;
  size_t i = 0;
  while (i < word.size()) {
    OWLQR_CHECK(word[i] == '[');
    size_t close = word.find(']', i);
    std::string_view content = word.substr(i + 1, close - i - 1);
    std::vector<std::string> choices;
    std::string current;
    for (char c : content) {
      if (c == '#') {
        choices.push_back(current);
        current.clear();
      } else {
        current.push_back(c);
      }
    }
    choices.push_back(current);
    blocks.push_back(std::move(choices));
    i = close + 1;
  }
  // Brute force over one choice per block.
  std::string chosen;
  std::function<bool(size_t)> pick = [&](size_t block) -> bool {
    if (block == blocks.size()) return InBaseLanguage(chosen);
    for (const std::string& choice : blocks[block]) {
      size_t len = chosen.size();
      chosen += choice;
      if (pick(block + 1)) return true;
      chosen.resize(len);
    }
    return false;
  };
  return pick(0);
}

std::unique_ptr<TBox> MakeTDoubleDagger(Vocabulary* vocab) {
  auto tbox = std::make_unique<TBox>(vocab);
  auto atomic = [&](const char* name) {
    return BasicConcept::Atomic(vocab->InternConcept(name));
  };
  auto role = [&](const std::string& name) {
    return RoleOf(vocab->InternPredicate(name));
  };
  auto r_of = [&](char c) { return role("R_" + CharName(c)); };
  auto s_of = [&](char c) { return role("S_" + CharName(c)); };
  auto exists = [](RoleId r) { return BasicConcept::Exists(r); };

  // (16) A <= D.
  tbox->AddConceptInclusion(atomic("A"), atomic("D"));
  // (11) D -> exists y (R_ai(x,y) & S_bi(y,x) & exists z (S_ai(y,z) &
  //                    R_bi(z,y) & D(z))), for i = 1, 2.
  const char kOpens[2] = {'a', 'c'};
  const char kCloses[2] = {'b', 'd'};
  for (int i = 0; i < 2; ++i) {
    RoleId w = role(std::string("w") + std::to_string(i + 1));
    RoleId u = role(std::string("u") + std::to_string(i + 1));
    tbox->AddConceptInclusion(atomic("D"), exists(w));
    tbox->AddRoleInclusion(w, r_of(kOpens[i]));
    tbox->AddRoleInclusion(w, Inverse(s_of(kCloses[i])));
    tbox->AddConceptInclusion(exists(Inverse(w)), exists(u));
    tbox->AddRoleInclusion(u, s_of(kOpens[i]));
    tbox->AddRoleInclusion(u, Inverse(r_of(kCloses[i])));
    tbox->AddConceptInclusion(exists(Inverse(u)), atomic("D"));
  }
  // (17) D -> exists y (R_[(x,y) & S_[(y,x)).
  {
    RoleId g = role("g1");
    tbox->AddConceptInclusion(atomic("D"), exists(g));
    tbox->AddRoleInclusion(g, r_of('['));
    tbox->AddRoleInclusion(g, Inverse(s_of('[')));
  }
  // (18) D -> exists y (R_[(x,y) & S_#(y,x) & exists z (S_[(y,z) &
  //                    R_#(z,y) & F(z))).
  {
    RoleId g2 = role("g2");
    RoleId g3 = role("g3");
    tbox->AddConceptInclusion(atomic("D"), exists(g2));
    tbox->AddRoleInclusion(g2, r_of('['));
    tbox->AddRoleInclusion(g2, Inverse(s_of('#')));
    tbox->AddConceptInclusion(exists(Inverse(g2)), exists(g3));
    tbox->AddRoleInclusion(g3, s_of('['));
    tbox->AddRoleInclusion(g3, Inverse(r_of('#')));
    tbox->AddConceptInclusion(exists(Inverse(g3)), atomic("F"));
  }
  // (19) D -> exists y (R_](x,y) & S_](y,x)).
  {
    RoleId g = role("g4");
    tbox->AddConceptInclusion(atomic("D"), exists(g));
    tbox->AddRoleInclusion(g, r_of(']'));
    tbox->AddRoleInclusion(g, Inverse(s_of(']')));
  }
  // (20) D -> exists y (R_#(x,y) & S_](y,x) & exists z (S_#(y,z) &
  //                    R_](z,y) & F(z))).
  {
    RoleId g5 = role("g5");
    RoleId g6 = role("g6");
    tbox->AddConceptInclusion(atomic("D"), exists(g5));
    tbox->AddRoleInclusion(g5, r_of('#'));
    tbox->AddRoleInclusion(g5, Inverse(s_of(']')));
    tbox->AddConceptInclusion(exists(Inverse(g5)), exists(g6));
    tbox->AddRoleInclusion(g6, s_of('#'));
    tbox->AddRoleInclusion(g6, Inverse(r_of(']')));
    tbox->AddConceptInclusion(exists(Inverse(g6)), atomic("F"));
  }
  // (21) F -> exists y (R_c(x,y) & S_c(y,x)) for c in Sigma_0 union {#}.
  for (char c : {'a', 'b', 'c', 'd', '#'}) {
    RoleId g = role(std::string("g7_") + CharName(c));
    tbox->AddConceptInclusion(atomic("F"), exists(g));
    tbox->AddRoleInclusion(g, r_of(c));
    tbox->AddRoleInclusion(g, Inverse(s_of(c)));
  }
  // The error concept E has no axioms: queries containing it are false.
  vocab->InternConcept("E");
  tbox->Normalize();
  return tbox;
}

ConjunctiveQuery MakeWordQuery(Vocabulary* vocab, std::string_view word) {
  OWLQR_CHECK(IsValidSigmaWord(word));
  ConjunctiveQuery query(vocab);
  int a_concept = vocab->InternConcept("A");
  int u = query.AddVariable("u0");
  query.AddUnaryAtom(a_concept, u);
  for (size_t i = 0; i < word.size(); ++i) {
    int v = query.AddVariable("v" + std::to_string(i));
    int next = query.AddVariable("u" + std::to_string(i + 1));
    query.AddBinaryAtom(
        vocab->InternPredicate("R_" + CharName(word[i])), u, v);
    query.AddBinaryAtom(
        vocab->InternPredicate("S_" + CharName(word[i])), v, next);
    u = next;
  }
  if (IsBlockFormed(word)) {
    query.AddUnaryAtom(a_concept, u);
  } else {
    query.AddUnaryAtom(vocab->InternConcept("E"), u);
  }
  return query;
}

DataInstance MakeWordData(Vocabulary* vocab) {
  DataInstance data(vocab);
  int a = vocab->InternIndividual("a");
  data.AddConceptAssertion(vocab->InternConcept("A"), a);
  data.AddConceptAssertion(vocab->InternConcept("D"), a);
  return data;
}

}  // namespace owlqr
