#include "reductions/sat.h"

#include <cmath>
#include <string>

#include "util/logging.h"

namespace owlqr {

std::unique_ptr<TBox> MakeTDagger(Vocabulary* vocab) {
  auto tbox = std::make_unique<TBox>(vocab);
  int a = vocab->InternConcept("A");
  int b_plus = vocab->InternConcept("B+");
  int b_minus = vocab->InternConcept("B-");
  int b0 = vocab->InternConcept("B0");
  RoleId p_plus = RoleOf(vocab->InternPredicate("P+"));
  RoleId p_minus = RoleOf(vocab->InternPredicate("P-"));
  RoleId p0 = RoleOf(vocab->InternPredicate("P0"));
  RoleId ups_plus = RoleOf(vocab->InternPredicate("ups+"));
  RoleId ups_minus = RoleOf(vocab->InternPredicate("ups-"));
  RoleId eta_plus = RoleOf(vocab->InternPredicate("eta+"));
  RoleId eta_minus = RoleOf(vocab->InternPredicate("eta-"));
  RoleId eta0 = RoleOf(vocab->InternPredicate("eta0"));

  auto atomic = [](int c) { return BasicConcept::Atomic(c); };
  auto exists = [](RoleId r) { return BasicConcept::Exists(r); };

  // A(x) -> exists y (P+(y,x) & P0(y,x) & B-(y) & A(y)) via ups+.
  tbox->AddConceptInclusion(atomic(a), exists(ups_plus));
  tbox->AddRoleInclusion(ups_plus, Inverse(p_plus));
  tbox->AddRoleInclusion(ups_plus, Inverse(p0));
  tbox->AddConceptInclusion(exists(Inverse(ups_plus)), atomic(b_minus));
  tbox->AddConceptInclusion(exists(Inverse(ups_plus)), atomic(a));
  // B-(y) -> exists x' (P-(y,x') & B0(x')) via eta-.
  tbox->AddConceptInclusion(atomic(b_minus), exists(eta_minus));
  tbox->AddRoleInclusion(eta_minus, p_minus);
  tbox->AddConceptInclusion(exists(Inverse(eta_minus)), atomic(b0));
  // A(x) -> exists y (P-(y,x) & P0(y,x) & B+(y) & A(y)) via ups-.
  tbox->AddConceptInclusion(atomic(a), exists(ups_minus));
  tbox->AddRoleInclusion(ups_minus, Inverse(p_minus));
  tbox->AddRoleInclusion(ups_minus, Inverse(p0));
  tbox->AddConceptInclusion(exists(Inverse(ups_minus)), atomic(b_plus));
  tbox->AddConceptInclusion(exists(Inverse(ups_minus)), atomic(a));
  // B+(y) -> exists x' (P+(y,x') & B0(x')) via eta+.
  tbox->AddConceptInclusion(atomic(b_plus), exists(eta_plus));
  tbox->AddRoleInclusion(eta_plus, p_plus);
  tbox->AddConceptInclusion(exists(Inverse(eta_plus)), atomic(b0));
  // B0(x) -> exists y (P+(x,y) & P-(x,y) & P0(x,y) & B0(y)) via eta0.
  tbox->AddConceptInclusion(atomic(b0), exists(eta0));
  tbox->AddRoleInclusion(eta0, p_plus);
  tbox->AddRoleInclusion(eta0, p_minus);
  tbox->AddRoleInclusion(eta0, p0);
  tbox->AddConceptInclusion(exists(Inverse(eta0)), atomic(b0));
  tbox->Normalize();
  return tbox;
}

namespace {

// The literal predicate for variable `var` (1-based) in clause `clause`.
int RayPredicate(Vocabulary* vocab, const Cnf& phi, int clause, int var) {
  for (int lit : phi.clauses[clause]) {
    if (lit == var) return vocab->InternPredicate("P+");
    if (lit == -var) return vocab->InternPredicate("P-");
  }
  return vocab->InternPredicate("P0");
}

}  // namespace

ConjunctiveQuery MakeSatQuery(Vocabulary* vocab, const TBox& t_dagger,
                              const Cnf& phi) {
  (void)t_dagger;
  ConjunctiveQuery query(vocab);
  int y = query.AddVariable("y");
  query.AddUnaryAtom(vocab->InternConcept("A"), y);
  int b0 = vocab->InternConcept("B0");
  for (size_t j = 0; j < phi.clauses.size(); ++j) {
    int prev = y;  // z^k_j = y.
    for (int l = phi.num_vars; l >= 1; --l) {
      int z = query.AddVariable("z_" + std::to_string(l - 1) + "_" +
                                std::to_string(j));
      query.AddBinaryAtom(RayPredicate(vocab, phi, static_cast<int>(j), l),
                          prev, z);
      prev = z;
    }
    query.AddUnaryAtom(b0, prev);
  }
  return query;
}

DataInstance MakeSatData(Vocabulary* vocab) {
  DataInstance data(vocab);
  data.AddConceptAssertion(vocab->InternConcept("A"),
                           vocab->InternIndividual("a"));
  return data;
}

bool IsSatisfiable(const Cnf& phi) {
  OWLQR_CHECK(phi.num_vars <= 20);
  for (unsigned mask = 0; mask < (1u << phi.num_vars); ++mask) {
    bool all = true;
    for (const std::vector<int>& clause : phi.clauses) {
      bool sat = false;
      for (int lit : clause) {
        int v = std::abs(lit) - 1;
        bool value = (mask >> v) & 1;
        if ((lit > 0) == value) sat = true;
      }
      if (!sat) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

ConjunctiveQuery MakeSatQueryBar(Vocabulary* vocab, const TBox& t_dagger,
                                 const Cnf& phi) {
  (void)t_dagger;
  int m = static_cast<int>(phi.clauses.size());
  int ell = 0;
  while ((1 << ell) < m) ++ell;
  OWLQR_CHECK_MSG((1 << ell) == m, "q-bar needs a power-of-two clause count");

  ConjunctiveQuery query(vocab);
  int x = query.AddVariable("x");
  query.MarkAnswerVariable(x);
  int p0 = vocab->InternPredicate("P0");
  int p_plus = vocab->InternPredicate("P+");
  int p_minus = vocab->InternPredicate("P-");
  int b0 = vocab->InternConcept("B0");
  // P0(y^1, x), ..., P0(y^k, y^{k-1}); y = y^k.
  int prev = x;
  for (int l = 1; l <= phi.num_vars; ++l) {
    int yl = query.AddVariable("y" + std::to_string(l));
    query.AddBinaryAtom(p0, yl, prev);
    prev = yl;
  }
  int y = prev;
  for (int j = 0; j < m; ++j) {
    // The clause ray as in q_phi (z^k_j = y down to z^0_j) ...
    int ray = y;
    for (int l = phi.num_vars; l >= 1; --l) {
      int z = query.AddVariable("z_" + std::to_string(l - 1) + "_" +
                                std::to_string(j));
      query.AddBinaryAtom(RayPredicate(vocab, phi, j, l), ray, z);
      ray = z;
    }
    // ... continued into the data tree by the binary address of j.
    for (int l = 0; l < ell; ++l) {
      int z = query.AddVariable("zm_" + std::to_string(l + 1) + "_" +
                                std::to_string(j));
      // Most-significant bit first: the tree instance addresses leaf j by
      // its binary expansion read from the root.
      bool bit = (j >> (ell - 1 - l)) & 1;
      query.AddBinaryAtom(bit ? p_plus : p_minus, ray, z);
      ray = z;
    }
    query.AddUnaryAtom(b0, ray);
  }
  return query;
}

DataInstance MakeTreeInstance(Vocabulary* vocab,
                              const std::vector<bool>& alpha) {
  int m = static_cast<int>(alpha.size());
  int ell = 0;
  while ((1 << ell) < m) ++ell;
  OWLQR_CHECK_MSG((1 << ell) == m, "alpha length must be a power of two");
  DataInstance data(vocab);
  int p_plus = vocab->InternPredicate("P+");
  int p_minus = vocab->InternPredicate("P-");
  int b0 = vocab->InternConcept("B0");
  int a_concept = vocab->InternConcept("A");

  // Nodes are addressed by (depth, index).
  auto node = [&](int depth, int index) {
    if (depth == 0) return vocab->InternIndividual("a");
    return vocab->InternIndividual("t_" + std::to_string(depth) + "_" +
                                   std::to_string(index));
  };
  data.AddConceptAssertion(a_concept, node(0, 0));
  for (int depth = 0; depth < ell; ++depth) {
    for (int index = 0; index < (1 << depth); ++index) {
      data.AddRoleAssertion(p_minus, node(depth, index),
                            node(depth + 1, 2 * index));
      data.AddRoleAssertion(p_plus, node(depth, index),
                            node(depth + 1, 2 * index + 1));
    }
  }
  for (int i = 0; i < m; ++i) {
    if (alpha[i]) data.AddConceptAssertion(b0, node(ell, i));
  }
  return data;
}

bool MonotoneSatFunction(const Cnf& phi, const std::vector<bool>& alpha) {
  Cnf reduced;
  reduced.num_vars = phi.num_vars;
  for (size_t j = 0; j < phi.clauses.size(); ++j) {
    if (!alpha[j]) reduced.clauses.push_back(phi.clauses[j]);
  }
  return IsSatisfiable(reduced);
}

}  // namespace owlqr
