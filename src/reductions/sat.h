#ifndef OWLQR_REDUCTIONS_SAT_H_
#define OWLQR_REDUCTIONS_SAT_H_

#include <memory>
#include <vector>

#include "cq/cq.h"
#include "data/data_instance.h"
#include "ontology/tbox.h"

namespace owlqr {

// A CNF over variables 1..num_vars; literals are +v / -v.
struct Cnf {
  int num_vars = 0;
  std::vector<std::vector<int>> clauses;
};

// The fixed infinite-depth ontology T-dagger of Theorem 17 (NP-hardness of
// tree-shaped OMQ answering for query complexity).  The ontology does not
// depend on the formula.
std::unique_ptr<TBox> MakeTDagger(Vocabulary* vocab);

// The star-shaped Boolean CQ q_phi of Theorem 17: T-dagger, {A(a)} |= q_phi
// iff phi is satisfiable.
ConjunctiveQuery MakeSatQuery(Vocabulary* vocab, const TBox& t_dagger,
                              const Cnf& phi);

// The data instance {A(a)}.
DataInstance MakeSatData(Vocabulary* vocab);

// Brute-force SAT reference.
bool IsSatisfiable(const Cnf& phi);

// --- Theorem 20 machinery -------------------------------------------------

// The modified query q-bar_phi(x) with one answer variable (requires the
// number of clauses to be a power of two).
ConjunctiveQuery MakeSatQueryBar(Vocabulary* vocab, const TBox& t_dagger,
                                 const Cnf& phi);

// The data instance A^alpha_m: a full binary tree of depth log2(m) over P-
// (left) and P+ (right) with A at the root `a` and B0 at leaf i iff
// alpha[i] is true.
DataInstance MakeTreeInstance(Vocabulary* vocab,
                              const std::vector<bool>& alpha);

// f_phi(alpha) = 1 iff phi minus the clauses with alpha_i = 1 is
// satisfiable (Lemma 26 reference).
bool MonotoneSatFunction(const Cnf& phi, const std::vector<bool>& alpha);

}  // namespace owlqr

#endif  // OWLQR_REDUCTIONS_SAT_H_
