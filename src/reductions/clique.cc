#include "reductions/clique.h"

#include <functional>
#include <string>

#include "util/logging.h"

namespace owlqr {

CliqueOmq MakeCliqueOmq(Vocabulary* vocab, const PartitionedGraph& g) {
  int m = g.num_vertices;       // M in the paper.
  int p = g.num_partitions;
  OWLQR_CHECK(m >= 1 && p >= 2);
  OWLQR_CHECK(static_cast<int>(g.partition_of.size()) == m + 1);
  auto tbox = std::make_unique<TBox>(vocab);
  int s_pred = vocab->InternPredicate("S");
  int y_pred = vocab->InternPredicate("Y");
  int u_pred = vocab->InternPredicate("U");
  int a_concept = vocab->InternConcept("A");
  int b_concept = vocab->InternConcept("B");

  // Roles L^k_j for block positions k = 1..2M and vertices j = 1..M; vertex
  // v_j owns positions 2j-1 and 2j of each block.
  auto l_role = [&](int k, int j) {
    return RoleOf(vocab->InternPredicate("L_" + std::to_string(k) + "_" +
                                         std::to_string(j)));
  };
  for (int j = 1; j <= m; ++j) {
    // Branch starts: A <= exists L^1_j for v_j in V_1.
    if (g.partition_of[j] == 1) {
      tbox->AddConceptInclusion(BasicConcept::Atomic(a_concept),
                                BasicConcept::Exists(l_role(1, j)));
    }
    // Chains within a block.
    for (int k = 1; k < 2 * m; ++k) {
      tbox->AddConceptInclusion(BasicConcept::Exists(Inverse(l_role(k, j))),
                                BasicConcept::Exists(l_role(k + 1, j)));
    }
    // Block transitions: end of v_j's block starts v_j''s block for the next
    // partition.
    if (g.partition_of[j] < p) {
      for (int jp = 1; jp <= m; ++jp) {
        if (g.partition_of[jp] == g.partition_of[j] + 1) {
          tbox->AddConceptInclusion(
              BasicConcept::Exists(Inverse(l_role(2 * m, j))),
              BasicConcept::Exists(l_role(1, jp)));
        }
      }
    }
    // End of the p-th block is marked B.
    if (g.partition_of[j] == p) {
      tbox->AddConceptInclusion(BasicConcept::Exists(Inverse(l_role(2 * m, j))),
                                BasicConcept::Atomic(b_concept));
    }
    for (int k = 1; k <= 2 * m; ++k) {
      // The selected vertex marks its own positions with S; the positions of
      // its neighbours with Y; every position is a U-step (all pointing from
      // child to parent: L(x,y) -> X(y,x) is L <= X^-).
      if (k == 2 * j - 1 || k == 2 * j) {
        tbox->AddRoleInclusion(l_role(k, j), RoleOf(s_pred, true));
      }
      for (int jp = 1; jp <= m; ++jp) {
        if (!g.HasEdge(j, jp)) continue;
        if (k == 2 * jp - 1 || k == 2 * jp) {
          tbox->AddRoleInclusion(l_role(k, j), RoleOf(y_pred, true));
        }
      }
      tbox->AddRoleInclusion(l_role(k, j), RoleOf(u_pred, true));
    }
  }
  // B <= exists PB with PB <= U and PB <= U^- (the padding pendant).
  RoleId pb = RoleOf(vocab->InternPredicate("PB"));
  tbox->AddConceptInclusion(BasicConcept::Atomic(b_concept),
                            BasicConcept::Exists(pb));
  tbox->AddRoleInclusion(pb, RoleOf(u_pred));
  tbox->AddRoleInclusion(pb, RoleOf(u_pred, true));
  tbox->Normalize();

  // The query: B(y) and, for 1 <= i < p, a branch
  //   (U^{2M-2} (Y Y U^{2M-2})^i S S)(y, z_i).
  ConjunctiveQuery query(vocab);
  int y = query.AddVariable("y");
  query.AddUnaryAtom(b_concept, y);
  for (int i = 1; i < p; ++i) {
    int prev = y;
    int counter = 0;
    auto step = [&](int predicate) {
      int next = query.AddVariable("w_" + std::to_string(i) + "_" +
                                   std::to_string(counter++));
      query.AddBinaryAtom(predicate, prev, next);
      prev = next;
    };
    for (int t = 0; t < 2 * m - 2; ++t) step(u_pred);
    for (int rep = 0; rep < i; ++rep) {
      step(y_pred);
      step(y_pred);
      for (int t = 0; t < 2 * m - 2; ++t) step(u_pred);
    }
    step(s_pred);
    step(s_pred);
  }

  DataInstance data(vocab);
  data.AddConceptAssertion(a_concept, vocab->InternIndividual("a"));
  CliqueOmq out{std::move(tbox), std::move(query), std::move(data)};
  return out;
}

bool HasPartitionedClique(const PartitionedGraph& g) {
  std::vector<std::vector<int>> classes(g.num_partitions + 1);
  for (int v = 1; v <= g.num_vertices; ++v) {
    classes[g.partition_of[v]].push_back(v);
  }
  std::vector<int> chosen;
  std::function<bool(int)> pick = [&](int cls) -> bool {
    if (cls > g.num_partitions) return true;
    for (int v : classes[cls]) {
      bool ok = true;
      for (int u : chosen) {
        if (!g.HasEdge(u, v)) ok = false;
      }
      if (!ok) continue;
      chosen.push_back(v);
      if (pick(cls + 1)) return true;
      chosen.pop_back();
    }
    return false;
  };
  return pick(1);
}

}  // namespace owlqr
