#ifndef OWLQR_REDUCTIONS_PE_TREES_H_
#define OWLQR_REDUCTIONS_PE_TREES_H_

#include "pe/pe_formula.h"
#include "reductions/sat.h"

namespace owlqr {

// The Theorem 28 construction (proof of Theorem 21: evaluating PE-queries
// over the tree instances A^alpha_m is NP-hard): a PE query q_m(x) of
// polynomial size such that, for every alpha,
//     A^alpha_m |= q_m(a)   iff   phi minus the alpha-marked clauses is
//                                 satisfiable.
//
// q_m(x) = exists z (r & s & t):
//   r   anchors one variable z_i on every leaf (the clause leaves),
//   s   places, per propositional variable j, the pair (x_j, x'_j) so that
//       exactly one of them is a B0 leaf (the truth assignment),
//   t   demands B0(z_i) (clause removed) or a true literal per clause.
//
// Requires: every clause has exactly 3 literals (repeat literals to pad),
// the number of clauses is a power of two >= 4, and phi itself is
// UNSATISFIABLE (the theorem instantiates phi with the all-clauses CNF
// phi_k below; with a satisfiable phi, alpha = 0 provides no B0 leaf for
// the s-subquery even though f_phi(0) = 1).
PeFormula MakeTheorem21PeQuery(Vocabulary* vocab, const Cnf& phi);

// The CNF phi_k of Theorem 28: all 3-literal clauses over k variables
// (unsatisfiable), padded with repeats of its first clause to the next
// power of two.
Cnf MakeAllClausesCnf(int k);

}  // namespace owlqr

#endif  // OWLQR_REDUCTIONS_PE_TREES_H_
