#include "reductions/hitting_set.h"

#include <functional>
#include <string>

#include "util/logging.h"

namespace owlqr {

namespace {

std::string Sub(const std::string& base, int a, int b) {
  return base + "_" + std::to_string(a) + "_" + std::to_string(b);
}

}  // namespace

HittingSetOmq MakeHittingSetOmq(Vocabulary* vocab, const Hypergraph& h,
                                int k) {
  OWLQR_CHECK(k >= 1);
  int n = h.num_vertices;
  int m = static_cast<int>(h.edges.size());
  auto tbox = std::make_unique<TBox>(vocab);
  int p = vocab->InternPredicate("P");

  auto v_concept = [&](int level, int i) {
    return vocab->InternConcept(Sub("V", level, i));
  };
  auto e_concept = [&](int level, int j) {
    return vocab->InternConcept(Sub("E", level, j));
  };

  // Level axioms: V^{l-1}_i <= exists v^l_{i'} for 0 <= i < i' <= n, where
  // the auxiliary role v^l_{i'} satisfies v^l_{i'}(x,z) -> P(z,x) and
  // exists (v^l_{i'})^- <= V^l_{i'}.
  for (int l = 1; l <= k; ++l) {
    for (int ip = 1; ip <= n; ++ip) {
      RoleId upsilon = RoleOf(vocab->InternPredicate(Sub("ups", l, ip)));
      tbox->AddRoleInclusion(upsilon, RoleOf(p, /*inverse=*/true));
      tbox->AddConceptInclusion(BasicConcept::Exists(Inverse(upsilon)),
                                BasicConcept::Atomic(v_concept(l, ip)));
      for (int i = 0; i < ip; ++i) {
        // V^0_i exists only for i = 0, but the unused inclusions are inert.
        tbox->AddConceptInclusion(BasicConcept::Atomic(v_concept(l - 1, i)),
                                  BasicConcept::Exists(upsilon));
      }
    }
  }
  // Membership markers: V^l_i <= E^l_j for v_i in e_j.
  for (int l = 1; l <= k; ++l) {
    for (int j = 0; j < m; ++j) {
      for (int vertex : h.edges[j]) {
        tbox->AddConceptInclusion(BasicConcept::Atomic(v_concept(l, vertex)),
                                  BasicConcept::Atomic(e_concept(l, j)));
      }
    }
  }
  // Pendants: E^l_j <= exists eta^l_j with eta^l_j <= P and
  // exists (eta^l_j)^- <= E^{l-1}_j.
  for (int l = 1; l <= k; ++l) {
    for (int j = 0; j < m; ++j) {
      RoleId eta = RoleOf(vocab->InternPredicate(Sub("eta", l, j)));
      tbox->AddConceptInclusion(BasicConcept::Atomic(e_concept(l, j)),
                                BasicConcept::Exists(eta));
      tbox->AddRoleInclusion(eta, RoleOf(p));
      tbox->AddConceptInclusion(BasicConcept::Exists(Inverse(eta)),
                                BasicConcept::Atomic(e_concept(l - 1, j)));
    }
  }
  tbox->Normalize();

  // The star-shaped Boolean CQ: one ray per hyperedge.
  ConjunctiveQuery query(vocab);
  int y = query.AddVariable("y");
  for (int j = 0; j < m; ++j) {
    int prev = y;
    for (int l = k - 1; l >= 0; --l) {
      int z = query.AddVariable("z_" + std::to_string(l) + "_" +
                                std::to_string(j));
      query.AddBinaryAtom(p, prev, z);
      prev = z;
    }
    query.AddUnaryAtom(e_concept(0, j), prev);
  }

  DataInstance data(vocab);
  data.AddConceptAssertion(v_concept(0, 0), vocab->InternIndividual("a"));

  HittingSetOmq out{std::move(tbox), std::move(query), std::move(data)};
  return out;
}

bool HasHittingSet(const Hypergraph& h, int k) {
  std::vector<int> chosen;
  std::function<bool(int, int)> pick = [&](int start, int remaining) -> bool {
    if (remaining == 0) {
      for (const std::vector<int>& edge : h.edges) {
        bool hit = false;
        for (int v : edge) {
          for (int c : chosen) {
            if (c == v) hit = true;
          }
        }
        if (!hit) return false;
      }
      return true;
    }
    for (int v = start; v <= h.num_vertices; ++v) {
      chosen.push_back(v);
      if (pick(v + 1, remaining - 1)) return true;
      chosen.pop_back();
    }
    return false;
  };
  return pick(1, k);
}

}  // namespace owlqr
