#include "reductions/pe_trees.h"

#include "util/logging.h"

namespace owlqr {

PeFormula MakeTheorem21PeQuery(Vocabulary* vocab, const Cnf& phi) {
  int m = static_cast<int>(phi.clauses.size());
  int ell = 0;
  while ((1 << ell) < m) ++ell;
  OWLQR_CHECK_MSG((1 << ell) == m && ell >= 2,
                  "need a power-of-two clause count >= 4");
  for (const std::vector<int>& clause : phi.clauses) {
    OWLQR_CHECK_MSG(clause.size() == 3, "clauses must have 3 literals");
  }
  OWLQR_CHECK_MSG(!IsSatisfiable(phi),
                  "Theorem 28 requires an unsatisfiable base CNF");
  int p_plus = vocab->InternPredicate("P+");
  int p_minus = vocab->InternPredicate("P-");
  int b0 = vocab->InternConcept("B0");

  PeFormula pe;
  int next_var = 0;
  int x = next_var++;  // The answer variable (the tree root).

  // Variables x_j (positive literal) and x'_j (negative literal) per
  // propositional variable.
  std::vector<int> pos_var(phi.num_vars + 1), neg_var(phi.num_vars + 1);
  for (int j = 1; j <= phi.num_vars; ++j) {
    pos_var[j] = next_var++;
    neg_var[j] = next_var++;
  }
  auto literal_var = [&](int literal) {
    return literal > 0 ? pos_var[literal] : neg_var[-literal];
  };
  // P+-(a, b) = P-(a,b) | P+(a,b).
  auto p_any = [&](int a, int b) {
    return pe.AddOr({pe.AddRoleAtom(p_minus, a, b),
                     pe.AddRoleAtom(p_plus, a, b)},
                    {a, b});
  };

  std::vector<int> conjuncts;

  // r: one path per clause leaf, following the bits of i (MSB first, as in
  // MakeTreeInstance).
  std::vector<int> z(m);
  for (int i = 0; i < m; ++i) {
    int prev = x;
    for (int l = 0; l < ell; ++l) {
      int node = next_var++;
      bool bit = (i >> (ell - 1 - l)) & 1;
      conjuncts.push_back(pe.AddRoleAtom(bit ? p_plus : p_minus, prev, node));
      prev = node;
    }
    z[i] = prev;
  }

  // s: per propositional variable, a path x -> u^1 -> ... -> u^{ell-1} and
  // the two-way choice of which of (x_j, x'_j) is the B0 leaf below
  // u^{ell-1}; the other one sits above it (= u^{ell-2}), hence is an inner
  // node and never B0.
  for (int j = 1; j <= phi.num_vars; ++j) {
    int prev = x;
    for (int l = 1; l <= ell - 1; ++l) {
      int node = next_var++;
      conjuncts.push_back(p_any(prev, node));
      prev = node;
    }
    int u = prev;  // u^{ell-1}.
    int xj = pos_var[j];
    int xnj = neg_var[j];
    int choice_pos = pe.AddAnd(
        {p_any(u, xj), p_any(xnj, u), pe.AddConceptAtom(b0, xj)},
        {u, xj, xnj});
    int choice_neg = pe.AddAnd(
        {p_any(u, xnj), p_any(xj, u), pe.AddConceptAtom(b0, xnj)},
        {u, xj, xnj});
    conjuncts.push_back(pe.AddOr({choice_pos, choice_neg}, {u, xj, xnj}));
  }

  // t: per clause, removed (B0 on its leaf) or satisfied by a true literal.
  for (int i = 0; i < m; ++i) {
    std::vector<int> options = {pe.AddConceptAtom(b0, z[i])};
    std::vector<int> schema = {z[i]};
    for (int literal : phi.clauses[i]) {
      int v = literal_var(literal);
      options.push_back(pe.AddConceptAtom(b0, v));
      bool present = false;
      for (int s : schema) present = present || s == v;
      if (!present) schema.push_back(v);
    }
    conjuncts.push_back(pe.AddOr(std::move(options), std::move(schema)));
  }

  int root = pe.AddAnd(std::move(conjuncts), {x});
  pe.SetRoot(root, {x});
  return pe;
}

Cnf MakeAllClausesCnf(int k) {
  OWLQR_CHECK(k >= 1);
  Cnf phi;
  phi.num_vars = k;
  std::vector<int> literals;
  for (int v = 1; v <= k; ++v) {
    literals.push_back(v);
    literals.push_back(-v);
  }
  // All 3-multisets of literals (order-insensitive).
  int n = static_cast<int>(literals.size());
  for (int a = 0; a < n; ++a) {
    for (int b = a; b < n; ++b) {
      for (int c = b; c < n; ++c) {
        phi.clauses.push_back({literals[a], literals[b], literals[c]});
      }
    }
  }
  while ((phi.clauses.size() & (phi.clauses.size() - 1)) != 0) {
    phi.clauses.push_back(phi.clauses[0]);
  }
  return phi;
}

}  // namespace owlqr
