#ifndef OWLQR_REDUCTIONS_HARDEST_LOGCFL_H_
#define OWLQR_REDUCTIONS_HARDEST_LOGCFL_H_

#include <memory>
#include <string>
#include <string_view>

#include "cq/cq.h"
#include "data/data_instance.h"
#include "ontology/tbox.h"

namespace owlqr {

// The Theorem 22 reduction (LOGCFL-hardness of linear OMQ answering for
// query complexity): the fixed ontology T-double-dagger plus a logspace
// transducer from words over Sigma = {a1, b1, a2, b2, [, ], #} to linear
// Boolean CQs q_w with T, {A(a)} |= q_w iff w is in Greibach's hardest
// LOGCFL language L.

// Words use the characters: 'a','b' (pair 1), 'c','d' (pair 2: a2, b2),
// '[', ']', '#'.
bool IsValidSigmaWord(std::string_view word);

// Block-formed per Section C.4.
bool IsBlockFormed(std::string_view word);

// Membership in the base language B0 (the two-pair Dyck language).
bool InBaseLanguage(std::string_view word);

// Membership in the hardest language L (brute force over block choices;
// meant for test-sized words).
bool InHardestLanguage(std::string_view word);

std::unique_ptr<TBox> MakeTDoubleDagger(Vocabulary* vocab);

// The transducer: word -> linear Boolean CQ q_w.  Non-block-formed words map
// to a query containing the error concept E (false over T, {A(a)}).
ConjunctiveQuery MakeWordQuery(Vocabulary* vocab, std::string_view word);

// The data instance {A(a), D(a)} (A <= D is axiom (16); the D-assertion is
// implied, but harmless to assert).
DataInstance MakeWordData(Vocabulary* vocab);

}  // namespace owlqr

#endif  // OWLQR_REDUCTIONS_HARDEST_LOGCFL_H_
