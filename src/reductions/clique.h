#ifndef OWLQR_REDUCTIONS_CLIQUE_H_
#define OWLQR_REDUCTIONS_CLIQUE_H_

#include <memory>
#include <vector>

#include "cq/cq.h"
#include "data/data_instance.h"
#include "ontology/tbox.h"

namespace owlqr {

// A graph with vertices 1..num_vertices partitioned into classes 1..p.
struct PartitionedGraph {
  int num_vertices = 0;
  int num_partitions = 0;
  std::vector<int> partition_of;             // 1-based; index 0 unused.
  std::vector<std::pair<int, int>> edges;    // Undirected.

  bool HasEdge(int u, int v) const {
    for (auto [a, b] : edges) {
      if ((a == u && b == v) || (a == v && b == u)) return true;
    }
    return false;
  }
};

// The Theorem 16 reduction (W[1]-hardness of pLeaves-TreeOMQ): an OMQ
// (T_G, q_G) with a tree-shaped Boolean CQ with p leaves such that
// T_G, {A(a)} |= q_G iff G has a clique with one vertex per partition.
struct CliqueOmq {
  std::unique_ptr<TBox> tbox;
  ConjunctiveQuery query;
  DataInstance data;  // {A(a)}.
};

CliqueOmq MakeCliqueOmq(Vocabulary* vocab, const PartitionedGraph& g);

// Brute-force reference: does G have a clique with one vertex per partition?
bool HasPartitionedClique(const PartitionedGraph& g);

}  // namespace owlqr

#endif  // OWLQR_REDUCTIONS_CLIQUE_H_
