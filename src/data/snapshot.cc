#include "data/snapshot.h"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <utility>

#include "util/metrics.h"

namespace owlqr {

const HashIndex* EdbRelation::Index(unsigned mask, AbortPoll poll_abort,
                                    void* poll_arg, bool* built_now) const {
  if (built_now != nullptr) *built_now = false;
  SharedIndexSlot* slot;
  std::unique_lock<std::mutex> lock(slot_mutex_);
  {
    std::unique_ptr<SharedIndexSlot>& entry = slots_[mask];
    if (entry == nullptr) entry = std::make_unique<SharedIndexSlot>();
    slot = entry.get();
  }
  using State = SharedIndexSlot::State;
  while (true) {
    if (slot->state == State::kReady) return &slot->index;
    if (slot->state == State::kEmpty) break;  // We become the builder.
    // Another thread is building.  Wait, but keep polling our own abort
    // signal so a cancelled request is not held hostage by someone else's
    // cold build (the builder keeps going; only we give up).
    slot_cv_.wait_for(lock, std::chrono::milliseconds(5));
    if (poll_abort != nullptr && slot->state != State::kReady &&
        poll_abort(poll_arg)) {
      return nullptr;
    }
  }
  slot->state = State::kBuilding;
  lock.unlock();

  // Same span/timer names as the evaluator's local index builds: trace
  // consumers see one "evaluate/index-build" stream regardless of which
  // cache the build landed in.
  OWLQR_NAMED_SPAN(span, "evaluate/index-build");
  const bool metrics = OWLQR_METRICS_ENABLED();
  const auto build_start = metrics ? std::chrono::steady_clock::now()
                                   : std::chrono::steady_clock::time_point();
  HashIndex index;
  const bool complete =
      BuildHashIndex(rows_, mask, &index, poll_abort, poll_arg);
  span.Attr("mask", static_cast<long>(mask));
  span.Attr("rows", static_cast<long>(rows_.size()));
  span.Attr("shared", 1);
  span.Attr("aborted", complete ? 0 : 1);
  if (metrics) {
    double build_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - build_start)
                          .count();
    OWLQR_RECORD("evaluator/index_build_ms", build_ms);
  }

  lock.lock();
  if (!complete) {
    // Aborted: discard the partial index and reset the slot so the next
    // request rebuilds; never publish incomplete shared state.
    slot->state = State::kEmpty;
    slot_cv_.notify_all();
    return nullptr;
  }
  slot->index = std::move(index);
  slot->state = State::kReady;
  slot_cv_.notify_all();
  if (built_now != nullptr) *built_now = true;
  return &slot->index;
}

namespace {

// The snapshot maps hold shared_ptr<const EdbRelation>; building goes
// through a mutable pointer that is only handed out before publication.
std::shared_ptr<EdbRelation> NewRelation(int arity) {
  return std::make_shared<EdbRelation>(arity);
}

std::shared_ptr<const EdbRelation> AdomRelation(
    const std::vector<int>& active_domain) {
  std::shared_ptr<EdbRelation> rel = NewRelation(1);
  Rows* rows = rel->mutable_rows();
  rows->Reserve(active_domain.size());
  for (int a : active_domain) rows->Insert(&a);
  return rel;
}

}  // namespace

std::shared_ptr<const DataSnapshot> DataSnapshot::FromInstance(
    const DataInstance& data, const TableStore* tables) {
  OWLQR_NAMED_SPAN(span, "snapshot/build");
  auto snapshot = std::shared_ptr<DataSnapshot>(new DataSnapshot());
  // The EDB materialisation stage of the pipeline happens here, once, rather
  // than lazily inside each evaluation — same trace span name so per-stage
  // accounting keeps working.
  OWLQR_NAMED_SPAN(edb_span, "evaluate/edb");
  for (int concept_id : data.ActiveConcepts()) {
    std::shared_ptr<EdbRelation> rel = NewRelation(1);
    Rows* rows = rel->mutable_rows();
    const auto& members = data.ConceptMembers(concept_id);
    rows->Reserve(members.size());
    for (int a : members) rows->Insert(&a);
    snapshot->num_atoms_ += static_cast<long>(rows->size());
    snapshot->concepts_.emplace(concept_id, std::move(rel));
  }
  for (int role_id : data.ActivePredicates()) {
    std::shared_ptr<EdbRelation> rel = NewRelation(2);
    Rows* rows = rel->mutable_rows();
    const auto& pairs = data.RolePairs(role_id);
    rows->Reserve(pairs.size());
    for (auto [a, b] : pairs) {
      int pair[2] = {a, b};
      rows->Insert(pair);
    }
    snapshot->num_atoms_ += static_cast<long>(rows->size());
    snapshot->roles_.emplace(role_id, std::move(rel));
  }
  snapshot->active_domain_ = data.individuals();
  if (tables != nullptr) {
    for (int t = 0; t < tables->num_tables(); ++t) {
      std::shared_ptr<EdbRelation> rel = NewRelation(tables->TableArity(t));
      Rows* rows = rel->mutable_rows();
      const auto& source_rows = tables->Rows(t);
      rows->Reserve(source_rows.size());
      for (const std::vector<int>& row : source_rows) {
        rows->Insert(row.data());
      }
      snapshot->tables_.emplace(t, std::move(rel));
    }
    for (int ind : tables->ActiveDomain()) {
      snapshot->active_domain_.push_back(ind);
    }
    std::sort(snapshot->active_domain_.begin(),
              snapshot->active_domain_.end());
    snapshot->active_domain_.erase(
        std::unique(snapshot->active_domain_.begin(),
                    snapshot->active_domain_.end()),
        snapshot->active_domain_.end());
  }
  snapshot->adom_ = AdomRelation(snapshot->active_domain_);
  span.Attr("atoms", snapshot->num_atoms_);
  span.Attr("individuals",
            static_cast<long>(snapshot->active_domain_.size()));
  return snapshot;
}

std::shared_ptr<const DataSnapshot> DataSnapshot::FromColumns(
    uint64_t version, long num_atoms, std::vector<int> active_domain,
    std::unordered_map<int, std::shared_ptr<const EdbRelation>> concepts,
    std::unordered_map<int, std::shared_ptr<const EdbRelation>> roles,
    std::vector<int> cold_concepts, std::vector<int> cold_roles,
    std::shared_ptr<const ColumnSource> source) {
  OWLQR_NAMED_SPAN(span, "snapshot/from-columns");
  auto snapshot = std::shared_ptr<DataSnapshot>(new DataSnapshot());
  snapshot->version_ = version;
  snapshot->num_atoms_ = num_atoms;
  snapshot->concepts_ = std::move(concepts);
  snapshot->roles_ = std::move(roles);
  snapshot->cold_concepts_ = std::move(cold_concepts);
  snapshot->cold_roles_ = std::move(cold_roles);
  snapshot->source_ = std::move(source);
  snapshot->active_domain_ = std::move(active_domain);
  snapshot->adom_ = AdomRelation(snapshot->active_domain_);
  span.Attr("atoms", snapshot->num_atoms_);
  span.Attr("resident", static_cast<long>(snapshot->concepts_.size() +
                                          snapshot->roles_.size()));
  span.Attr("cold", static_cast<long>(snapshot->cold_concepts_.size() +
                                      snapshot->cold_roles_.size()));
  return snapshot;
}

void SnapshotDelta::MergeFrom(const SnapshotDelta& other) {
  for (const auto& [id, rows] : other.concept_rows) {
    std::vector<int>& dst = concept_rows[id];
    dst.insert(dst.end(), rows.begin(), rows.end());
  }
  for (const auto& [id, rows] : other.role_rows) {
    std::vector<int>& dst = role_rows[id];
    dst.insert(dst.end(), rows.begin(), rows.end());
  }
  if (!other.new_individuals.empty()) {
    std::vector<int> merged;
    merged.reserve(new_individuals.size() + other.new_individuals.size());
    std::merge(new_individuals.begin(), new_individuals.end(),
               other.new_individuals.begin(), other.new_individuals.end(),
               std::back_inserter(merged));
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    new_individuals = std::move(merged);
  }
}

std::shared_ptr<const DataSnapshot> DataSnapshot::WithFacts(
    const FactBatch& batch, SnapshotDelta* delta) const {
  OWLQR_NAMED_SPAN(span, "snapshot/apply-facts");
  if (delta != nullptr) *delta = SnapshotDelta();

  // Pass 1: deduplicate the batch against itself (each fresh Rows dedups on
  // Insert) and against the parent (Contains, a const probe) before copying
  // anything.  After this pass, fresh_* hold exactly the rows a successor
  // snapshot appends — every entry has at least one row, and an individual
  // is noted only when a genuinely new fact mentions it.
  std::unordered_map<int, Rows> fresh_concepts;
  std::unordered_map<int, Rows> fresh_roles;
  auto fresh_for = [](std::unordered_map<int, Rows>& fresh, int id,
                      int arity) -> Rows* {
    auto [it, inserted] = fresh.try_emplace(id);
    if (inserted) {
      it->second.arity = arity;
      it->second.materialized = true;
    }
    return &it->second;
  };
  std::vector<int> new_individuals;
  auto note_individual = [this, &new_individuals](int ind) {
    if (!std::binary_search(active_domain_.begin(), active_domain_.end(),
                            ind)) {
      new_individuals.push_back(ind);
    }
  };

  long added = 0;
  for (const FactBatch::ConceptFact& fact : batch.concepts) {
    const EdbRelation* parent = Concept(fact.concept_id);
    if (parent != nullptr && parent->rows().Contains(&fact.individual)) {
      continue;
    }
    if (fresh_for(fresh_concepts, fact.concept_id, 1)
            ->Insert(&fact.individual)) {
      ++added;
      note_individual(fact.individual);
    }
  }
  for (const FactBatch::RoleFact& fact : batch.roles) {
    const EdbRelation* parent = Role(fact.role_id);
    int pair[2] = {fact.subject, fact.object};
    if (parent != nullptr && parent->rows().Contains(pair)) continue;
    if (fresh_for(fresh_roles, fact.role_id, 2)->Insert(pair)) {
      ++added;
      note_individual(fact.subject);
      note_individual(fact.object);
    }
  }

  if (added == 0) {
    // Effectively-empty batch: every fact was already present, so the
    // parent snapshot IS the result — same version(), no copies, and the
    // delta stays empty.
    span.Attr("version", static_cast<long>(version_));
    span.Attr("added", 0);
    span.Attr("noop", 1);
    return shared_from_this();
  }
  std::sort(new_individuals.begin(), new_individuals.end());
  new_individuals.erase(
      std::unique(new_individuals.begin(), new_individuals.end()),
      new_individuals.end());

  auto next = std::shared_ptr<DataSnapshot>(new DataSnapshot());
  // Share everything by default; only relations with fresh rows get the
  // copy-on-write treatment below.
  next->concepts_ = concepts_;
  next->roles_ = roles_;
  next->tables_ = tables_;
  next->num_atoms_ = num_atoms_ + added;
  next->version_ = version_ + 1;
  if (source_ != nullptr) {
    // Columns faulted in on this snapshot are resident in the child (the
    // dedup pass above already loaded any cold relation the batch touches,
    // so grow() below always sees its parent rows); everything still cold
    // stays cold, served by the shared source.
    std::lock_guard<std::mutex> lock(lazy_mutex_);
    for (const auto& [id, rel] : lazy_concepts_) next->concepts_[id] = rel;
    for (const auto& [id, rel] : lazy_roles_) next->roles_[id] = rel;
  }

  auto grow =
      [](std::unordered_map<int, std::shared_ptr<const EdbRelation>>& map,
         int id, const Rows& fresh) {
        auto it = map.find(id);
        std::shared_ptr<EdbRelation> rel =
            it == map.end() ? NewRelation(fresh.arity)
                            : std::make_shared<EdbRelation>(*it->second);
        Rows* rows = rel->mutable_rows();
        for (size_t r = 0; r < fresh.size(); ++r) rows->Insert(fresh.row(r));
        map[id] = std::move(rel);
      };
  for (const auto& [id, fresh] : fresh_concepts) {
    grow(next->concepts_, id, fresh);
  }
  for (const auto& [id, fresh] : fresh_roles) {
    grow(next->roles_, id, fresh);
  }

  if (source_ != nullptr) {
    next->source_ = source_;
    auto still_cold = [&next](const std::vector<int>& cold, bool role) {
      std::vector<int> out;
      out.reserve(cold.size());
      const auto& resident = role ? next->roles_ : next->concepts_;
      for (int id : cold) {
        if (resident.find(id) == resident.end()) out.push_back(id);
      }
      return out;
    };
    next->cold_concepts_ = still_cold(cold_concepts_, /*role=*/false);
    next->cold_roles_ = still_cold(cold_roles_, /*role=*/true);
  }

  if (new_individuals.empty()) {
    // Same active domain, so the (potentially large) TOP relation and the
    // sorted individual list are shared too.
    next->active_domain_ = active_domain_;
    next->adom_ = adom_;
  } else {
    next->active_domain_.reserve(active_domain_.size() +
                                 new_individuals.size());
    std::merge(active_domain_.begin(), active_domain_.end(),
               new_individuals.begin(), new_individuals.end(),
               std::back_inserter(next->active_domain_));
    next->adom_ = AdomRelation(next->active_domain_);
  }

  if (delta != nullptr) {
    // The fresh cells arenas are already exactly the appended rows in
    // insertion order; hand them over wholesale.
    for (auto& [id, fresh] : fresh_concepts) {
      delta->concept_rows.emplace(id, std::move(fresh.cells));
    }
    for (auto& [id, fresh] : fresh_roles) {
      delta->role_rows.emplace(id, std::move(fresh.cells));
    }
    delta->new_individuals = std::move(new_individuals);
  }
  span.Attr("version", static_cast<long>(next->version_));
  span.Attr("added", added);
  span.Attr("copied_relations",
            static_cast<long>(fresh_concepts.size() + fresh_roles.size()));
  return next;
}

const EdbRelation* DataSnapshot::LookupOrFault(
    const std::unordered_map<int, std::shared_ptr<const EdbRelation>>&
        resident,
    const std::vector<int>& cold,
    std::unordered_map<int, std::shared_ptr<const EdbRelation>>* lazy,
    bool role, int id) const {
  auto it = resident.find(id);
  if (it != resident.end()) return it->second.get();
  if (source_ == nullptr ||
      !std::binary_search(cold.begin(), cold.end(), id)) {
    return nullptr;
  }
  // Cold column: fault it in once and publish it in the overlay.  The
  // mutex serializes concurrent first touches of different columns too —
  // acceptable, a load is one memcpy plus one table-placement pass.
  std::lock_guard<std::mutex> lock(lazy_mutex_);
  auto lazy_it = lazy->find(id);
  if (lazy_it == lazy->end()) {
    std::shared_ptr<const EdbRelation> rel = source_->LoadColumn(role, id);
    lazy_it = lazy->emplace(id, std::move(rel)).first;
    OWLQR_COUNT("store/cold_column_faults", 1);
  }
  return lazy_it->second.get();
}

const EdbRelation* DataSnapshot::Concept(int concept_id) const {
  return LookupOrFault(concepts_, cold_concepts_, &lazy_concepts_,
                       /*role=*/false, concept_id);
}

const EdbRelation* DataSnapshot::Role(int role_id) const {
  return LookupOrFault(roles_, cold_roles_, &lazy_roles_,
                       /*role=*/true, role_id);
}

size_t DataSnapshot::ResidentColumns() const {
  size_t resident = concepts_.size() + roles_.size();
  if (source_ != nullptr) {
    std::lock_guard<std::mutex> lock(lazy_mutex_);
    resident += lazy_concepts_.size() + lazy_roles_.size();
  }
  return resident;
}

size_t DataSnapshot::ColdColumns() const {
  if (source_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(lazy_mutex_);
  return cold_concepts_.size() + cold_roles_.size() - lazy_concepts_.size() -
         lazy_roles_.size();
}

const EdbRelation* DataSnapshot::Table(int table_id) const {
  auto it = tables_.find(table_id);
  return it == tables_.end() ? nullptr : it->second.get();
}

}  // namespace owlqr
