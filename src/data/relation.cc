#include "data/relation.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "util/logging.h"
#include "util/metrics.h"

namespace owlqr {

namespace {

// Slot values are row id + 1 stored in 32 bits, so the last representable
// row id is 2^32 - 2; inserting beyond that would silently truncate and
// corrupt deduplication.  Insert saturates at the ceiling (refuse + mark
// AtRowCeiling) instead of aborting the process: the serving engine must
// survive a query that tries, and the evaluator turns the flag into a
// cooperative abort at its next limit flush — on the sequential path AND
// the morsel-shard merge, which writes through the same Insert.
constexpr size_t kMaxRowsPerRelation = 0xFFFFFFFEull;
// Crossing half the ceiling bumps evaluator/rows_near_overflow so capacity
// headroom shows up in traces long before saturation.
constexpr size_t kRowsNearOverflow = 1ull << 31;

// Test-only ceiling override (0 = the real ceiling).  Plain variable: tests
// set it before threads start and restore it after they join.
size_t g_max_rows_for_test = 0;

inline size_t RowCeiling() {
  return g_max_rows_for_test != 0 ? g_max_rows_for_test : kMaxRowsPerRelation;
}

inline size_t NearOverflowMark(size_t ceiling) {
  return ceiling == kMaxRowsPerRelation ? kRowsNearOverflow : ceiling / 2;
}

// Packs an arity-1 or arity-2 tuple into the inline dedup key.  Bit-casts
// through uint32_t so negative ints round-trip.
inline uint64_t PackSmall(const int* tuple, int arity) {
  uint64_t key = static_cast<uint32_t>(tuple[0]);
  if (arity == 2) {
    key = (key << 32) | static_cast<uint32_t>(tuple[1]);
  }
  return key;
}

}  // namespace

Rows::SlotBuffer::SlotBuffer(size_t n)
    : data(static_cast<SmallSlot*>(std::calloc(n, sizeof(SmallSlot)))),
      size(n) {
  OWLQR_CHECK_MSG(n == 0 || data != nullptr, "dedup table allocation failed");
}

Rows::SlotBuffer::SlotBuffer(const SlotBuffer& o) : SlotBuffer(o.size) {
  if (o.size != 0) std::memcpy(data, o.data, o.size * sizeof(SmallSlot));
}

Rows::SlotBuffer& Rows::SlotBuffer::operator=(const SlotBuffer& o) {
  if (this != &o) *this = SlotBuffer(o);
  return *this;
}

Rows::SlotBuffer& Rows::SlotBuffer::operator=(SlotBuffer&& o) noexcept {
  if (this != &o) {
    std::free(data);
    data = o.data;
    size = o.size;
    o.data = nullptr;
    o.size = 0;
  }
  return *this;
}

Rows::SlotBuffer::~SlotBuffer() { std::free(data); }

bool Rows::Insert(const int* tuple) {
  if (arity == 0) {
    // The zero-ary relation holds at most the empty tuple.
    if (num_rows_ > 0) return false;
    num_rows_ = 1;
    return true;
  }
  return arity <= 2 ? InsertSmall(tuple) : InsertWide(tuple);
}

bool Rows::Contains(const int* tuple) const {
  if (arity == 0) return num_rows_ > 0;
  if (arity <= 2) {
    if (small_.size == 0) return false;
    size_t mask = small_.size - 1;
    uint64_t key = PackSmall(tuple, arity);
    size_t pos = HashTuple(tuple, arity) & mask;
    while (small_[pos].id != 0) {
      if (small_[pos].key == key) return true;
      pos = (pos + 1) & mask;
    }
    return false;
  }
  if (slots_.empty()) return false;
  size_t mask = slots_.size() - 1;
  size_t pos = HashTuple(tuple, arity) & mask;
  while (slots_[pos] != 0) {
    if (std::equal(tuple, tuple + arity, row(slots_[pos] - 1))) return true;
    pos = (pos + 1) & mask;
  }
  return false;
}

bool Rows::InsertSmall(const int* tuple) {
  if ((num_rows_ + 1) * 2 > small_.size) GrowSmall();
  size_t mask = small_.size - 1;
  uint64_t key = PackSmall(tuple, arity);
  size_t hash = HashTuple(tuple, arity);
  size_t pos = hash & mask;
  while (small_[pos].id != 0) {
    if (small_[pos].key == key) return false;
    pos = (pos + 1) & mask;
  }
  const size_t ceiling = RowCeiling();
  if (num_rows_ >= ceiling) {
    at_row_ceiling_ = true;
    return false;
  }
  small_[pos].key = key;
  small_[pos].id = static_cast<uint32_t>(num_rows_ + 1);
  small_[pos].hash32 = static_cast<uint32_t>(hash);
  cells.insert(cells.end(), tuple, tuple + arity);
  if (++num_rows_ == NearOverflowMark(ceiling)) {
    OWLQR_COUNT("evaluator/rows_near_overflow", 1);
  }
  return true;
}

bool Rows::InsertWide(const int* tuple) {
  if ((num_rows_ + 1) * 2 > slots_.size()) GrowWide();
  size_t mask = slots_.size() - 1;
  size_t pos = HashTuple(tuple, arity) & mask;
  while (slots_[pos] != 0) {
    const int* existing = row(slots_[pos] - 1);
    if (std::equal(tuple, tuple + arity, existing)) return false;
    pos = (pos + 1) & mask;
  }
  const size_t ceiling = RowCeiling();
  if (num_rows_ >= ceiling) {
    at_row_ceiling_ = true;
    return false;
  }
  slots_[pos] = static_cast<uint32_t>(num_rows_ + 1);
  cells.insert(cells.end(), tuple, tuple + arity);
  if (++num_rows_ == NearOverflowMark(ceiling)) {
    OWLQR_COUNT("evaluator/rows_near_overflow", 1);
  }
  return true;
}

size_t Rows::InsertBatch(const int* tuples, size_t n, const size_t* hashes,
                         uint32_t* new_idx) {
  // The wide and zero-ary cases are rare enough that per-tuple Insert is
  // fine; the batch machinery pays off on the small-arity fast path below.
  if (arity == 0 || arity > 2) {
    size_t added = 0;
    for (size_t i = 0; i < n; ++i) {
      if (Insert(tuples + static_cast<size_t>(arity) * i)) {
        new_idx[added++] = static_cast<uint32_t>(i);
      }
    }
    return added;
  }
  if (small_.size == 0) GrowSmall();
  const size_t ceiling = RowCeiling();
  const size_t near_mark = NearOverflowMark(ceiling);

  // Pass 1 — read-only duplicate filter against the table as it stands.
  // Saturated joins emit mostly duplicates, and this loop retires them with
  // pipelined independent probes (no growth checks, no stores).  It is
  // conservative: a tuple equal to an earlier tuple of the *same* batch is
  // not in the table yet, survives, and is caught by pass 2's re-probe.
  // Survivor indexes go on the stack; oversized batches (the EmitBatch
  // caller chunks at the limit-flush countdown, far below this) fall back
  // to probing inline in pass 2.
  constexpr size_t kFilterCap = 4096;
  uint32_t survivors[kFilterCap];
  size_t num_survivors = 0;
  const bool filtered = n <= kFilterCap;
  if (filtered) {
    const size_t mask = small_.size - 1;
    // Wave-style group prefetch: fetch a group's dedup slots, then probe
    // the group — keeps several independent misses in flight where a
    // lookahead distance would serialise behind chain extensions.
    constexpr size_t kWave = 32;
    for (size_t base = 0; base < n; base += kWave) {
      const size_t lim = base + kWave < n ? base + kWave : n;
      for (size_t i = base; i < lim; ++i) {
        __builtin_prefetch(&small_[hashes[i] & mask]);
      }
      for (size_t i = base; i < lim; ++i) {
        const int* tuple = tuples + static_cast<size_t>(arity) * i;
        const uint64_t key = PackSmall(tuple, arity);
        size_t pos = hashes[i] & mask;
        bool duplicate = false;
        while (small_[pos].id != 0) {
          if (small_[pos].key == key) {
            duplicate = true;
            break;
          }
          pos = (pos + 1) & mask;
        }
        if (!duplicate) survivors[num_survivors++] = static_cast<uint32_t>(i);
      }
    }
  }

  // Pass 2 — insert the survivors in order, with the exact growth schedule
  // and duplicate semantics of n sequential InsertSmall calls.
  const size_t rounds = filtered ? num_survivors : n;
  size_t mask = small_.size - 1;
  size_t added = 0;
  for (size_t r = 0; r < rounds; ++r) {
    const size_t i = filtered ? survivors[r] : r;
    if ((num_rows_ + 1) * 2 > small_.size) {
      GrowSmall();
      mask = small_.size - 1;
    }
    const int* tuple = tuples + static_cast<size_t>(arity) * i;
    const uint64_t key = PackSmall(tuple, arity);
    const size_t hash = hashes[i];
    size_t pos = hash & mask;
    bool duplicate = false;
    while (small_[pos].id != 0) {
      if (small_[pos].key == key) {
        duplicate = true;
        break;
      }
      pos = (pos + 1) & mask;
    }
    if (duplicate) continue;
    if (num_rows_ >= ceiling) {
      at_row_ceiling_ = true;
      continue;
    }
    small_[pos].key = key;
    small_[pos].id = static_cast<uint32_t>(num_rows_ + 1);
    small_[pos].hash32 = static_cast<uint32_t>(hash);
    cells.push_back(tuple[0]);
    if (arity == 2) cells.push_back(tuple[1]);
    new_idx[added++] = static_cast<uint32_t>(i);
    if (++num_rows_ == near_mark) {
      OWLQR_COUNT("evaluator/rows_near_overflow", 1);
    }
  }
  return added;
}

void Rows::SetMaxRowsForTest(size_t max_rows) {
  g_max_rows_for_test = max_rows;
}

void Rows::RehashSmall(size_t capacity) {
  SlotBuffer old = std::move(small_);
  small_ = SlotBuffer(capacity);
  size_t mask = capacity - 1;
  for (size_t i = 0; i < old.size; ++i) {
    const SmallSlot& slot = old[i];
    if (slot.id == 0) continue;
    size_t pos = slot.hash32 & mask;
    while (small_[pos].id != 0) pos = (pos + 1) & mask;
    small_[pos] = slot;
  }
}

void Rows::GrowSmall() {
  RehashSmall(small_.size == 0 ? 64 : small_.size * 2);
}

void Rows::Reserve(size_t expected_rows) {
  if (arity < 1 || arity > 2) return;  // Wide relations are rare; skip.
  // Bound the hint so a selective join over a huge driver cannot turn the
  // estimate into an allocation: at most 2^16 slots (1 MiB of SmallSlots);
  // a relation that truly outgrows that resumes doubling from there.
  constexpr size_t kMaxReserveSlots = 1ull << 16;
  size_t needed = expected_rows * 2;  // Keep load factor <= 1/2.
  if (needed > kMaxReserveSlots) needed = kMaxReserveSlots;
  size_t capacity = 64;
  while (capacity < needed) capacity <<= 1;
  if (capacity > small_.size) RehashSmall(capacity);
}

void Rows::AdoptColumn(int arity_in, const int* column, size_t num_rows) {
  OWLQR_CHECK_MSG(num_rows_ == 0 && cells.empty(),
                  "AdoptColumn requires an empty relation");
  arity = arity_in;
  materialized = true;
  if (arity == 0) {
    num_rows_ = num_rows > 0 ? 1 : 0;
    return;
  }
  cells.assign(column, column + num_rows * static_cast<size_t>(arity));
  num_rows_ = num_rows;
  if (num_rows == 0) return;
  // Presize the dedup table for the final row count and place every row in
  // one pass.  Distinctness is the caller's contract, so placement skips
  // the duplicate compare and only walks to the first empty slot.
  size_t capacity = 64;
  while (capacity < num_rows * 2) capacity <<= 1;
  if (arity <= 2) {
    small_ = SlotBuffer(capacity);
    const size_t mask = capacity - 1;
    for (size_t r = 0; r < num_rows; ++r) {
      const int* tuple = row(r);
      const size_t hash = HashTuple(tuple, arity);
      size_t pos = hash & mask;
      while (small_[pos].id != 0) pos = (pos + 1) & mask;
      small_[pos].key = PackSmall(tuple, arity);
      small_[pos].id = static_cast<uint32_t>(r + 1);
      small_[pos].hash32 = static_cast<uint32_t>(hash);
    }
  } else {
    slots_.assign(capacity, 0);
    const size_t mask = capacity - 1;
    for (size_t r = 0; r < num_rows; ++r) {
      size_t pos = HashTuple(row(r), arity) & mask;
      while (slots_[pos] != 0) pos = (pos + 1) & mask;
      slots_[pos] = static_cast<uint32_t>(r + 1);
    }
  }
}

void Rows::GrowWide() {
  size_t capacity = slots_.empty() ? 64 : slots_.size() * 2;
  slots_.assign(capacity, 0);
  size_t mask = capacity - 1;
  for (size_t r = 0; r < num_rows_; ++r) {
    size_t pos = HashTuple(row(r), arity) & mask;
    while (slots_[pos] != 0) pos = (pos + 1) & mask;
    slots_[pos] = static_cast<uint32_t>(r + 1);
  }
}

std::vector<std::vector<int>> Rows::ToTuples() const {
  std::vector<std::vector<int>> out;
  out.reserve(num_rows_);
  for (size_t r = 0; r < num_rows_; ++r) {
    out.emplace_back(row(r), row(r) + arity);
  }
  return out;
}

std::vector<std::vector<int>> Rows::ToSortedTuples() const {
  std::vector<uint32_t> order(num_rows_);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [this](uint32_t a, uint32_t b) {
    const int* ra = row(a);
    const int* rb = row(b);
    return std::lexicographical_compare(ra, ra + arity, rb, rb + arity);
  });
  std::vector<std::vector<int>> out;
  out.reserve(num_rows_);
  for (uint32_t r : order) {
    out.emplace_back(row(r), row(r) + arity);
  }
  return out;
}

bool BuildHashIndex(const Rows& rows, unsigned mask, HashIndex* index,
                    AbortPoll poll_abort, void* poll_arg) {
  size_t capacity = 64;
  while (capacity < rows.size() * 2) capacity <<= 1;
  index->mask = capacity - 1;
  index->hashes.assign(capacity, 0);
  index->starts.assign(capacity, 0);
  index->ends.assign(capacity, 0);
  bool complete = true;
  // Pass 1: claim a slot per distinct key hash and count its rows.
  std::vector<uint32_t> row_hash;
  row_hash.reserve(rows.size());
  std::vector<int> key_values;
  for (size_t r = 0; r < rows.size(); ++r) {
    // A single huge index build must honour the caller's abort signal (the
    // evaluator's deadline); an aborted build leaves a partial index, which
    // is only sound if the caller stops every consumer before it trusts the
    // results.
    if (poll_abort != nullptr &&
        (r & (kRelationAbortInterval - 1)) == kRelationAbortInterval - 1 &&
        poll_abort(poll_arg)) {
      complete = false;
      break;
    }
    key_values.clear();
    const int* tuple = rows.row(r);
    for (int i = 0; i < rows.arity; ++i) {
      if (mask & (1u << i)) key_values.push_back(tuple[i]);
    }
    uint32_t h = static_cast<uint32_t>(
        HashTuple(key_values.data(), static_cast<int>(key_values.size())));
    if (h == 0) h = 1;
    row_hash.push_back(h);
    size_t pos = h & index->mask;
    while (index->hashes[pos] != 0 && index->hashes[pos] != h) {
      pos = (pos + 1) & index->mask;
    }
    index->hashes[pos] = h;
    ++index->ends[pos];
  }
  // Pass 2: prefix-sum the counts into per-key ranges, then scatter the
  // row ids; `ends` advances back to one-past-last as rows land.
  uint32_t cursor = 0;
  for (size_t pos = 0; pos < capacity; ++pos) {
    if (index->hashes[pos] == 0) continue;
    index->starts[pos] = cursor;
    cursor += index->ends[pos];
    index->ends[pos] = index->starts[pos];
  }
  index->ids.resize(cursor);
  for (size_t r = 0; r < row_hash.size(); ++r) {
    uint32_t h = row_hash[r];
    size_t pos = h & index->mask;
    while (index->hashes[pos] != h) pos = (pos + 1) & index->mask;
    index->ids[index->ends[pos]++] = static_cast<uint32_t>(r);
  }
  return complete;
}

}  // namespace owlqr
