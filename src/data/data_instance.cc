#include "data/data_instance.h"

#include <algorithm>

namespace owlqr {

void DataInstance::AddIndividual(int individual) {
  if (individual_set_.insert(individual).second) {
    individuals_.insert(
        std::lower_bound(individuals_.begin(), individuals_.end(), individual),
        individual);
  }
}

int DataInstance::AddIndividual(std::string_view name) {
  int id = vocabulary_->InternIndividual(name);
  AddIndividual(id);
  return id;
}

void DataInstance::AddConceptAssertion(int concept_id, int individual) {
  AddIndividual(individual);
  if (unary_sets_[concept_id].insert(individual).second) {
    unary_[concept_id].push_back(individual);
  }
}

void DataInstance::AddRoleAssertion(int predicate_id, int subject,
                                    int object) {
  AddIndividual(subject);
  AddIndividual(object);
  if (binary_sets_[predicate_id].insert({subject, object}).second) {
    binary_[predicate_id].emplace_back(subject, object);
  }
}

void DataInstance::AddRoleAssertionForRole(RoleId role, int a, int b) {
  if (IsInverse(role)) {
    AddRoleAssertion(PredicateOf(role), b, a);
  } else {
    AddRoleAssertion(PredicateOf(role), a, b);
  }
}

void DataInstance::Assert(std::string_view concept_name,
                          std::string_view individual) {
  AddConceptAssertion(vocabulary_->InternConcept(concept_name),
                      vocabulary_->InternIndividual(individual));
}

void DataInstance::Assert(std::string_view predicate_name,
                          std::string_view subject, std::string_view object) {
  AddRoleAssertion(vocabulary_->InternPredicate(predicate_name),
                   vocabulary_->InternIndividual(subject),
                   vocabulary_->InternIndividual(object));
}

bool DataInstance::HasConceptAssertion(int concept_id, int individual) const {
  auto it = unary_sets_.find(concept_id);
  return it != unary_sets_.end() && it->second.count(individual) > 0;
}

bool DataInstance::HasRoleAssertion(int predicate_id, int subject,
                                    int object) const {
  auto it = binary_sets_.find(predicate_id);
  return it != binary_sets_.end() && it->second.count({subject, object}) > 0;
}

bool DataInstance::HasRoleAssertionForRole(RoleId role, int a, int b) const {
  return IsInverse(role) ? HasRoleAssertion(PredicateOf(role), b, a)
                         : HasRoleAssertion(PredicateOf(role), a, b);
}

const std::vector<int>& DataInstance::ConceptMembers(int concept_id) const {
  static const std::vector<int> kEmpty;
  auto it = unary_.find(concept_id);
  return it == unary_.end() ? kEmpty : it->second;
}

const std::vector<std::pair<int, int>>& DataInstance::RolePairs(
    int predicate_id) const {
  static const std::vector<std::pair<int, int>> kEmpty;
  auto it = binary_.find(predicate_id);
  return it == binary_.end() ? kEmpty : it->second;
}

std::vector<int> DataInstance::ActiveConcepts() const {
  std::vector<int> out;
  for (const auto& [concept_id, members] : unary_) {
    if (!members.empty()) out.push_back(concept_id);
  }
  return out;
}

std::vector<int> DataInstance::ActivePredicates() const {
  std::vector<int> out;
  for (const auto& [predicate_id, pairs] : binary_) {
    if (!pairs.empty()) out.push_back(predicate_id);
  }
  return out;
}

long DataInstance::NumAtoms() const {
  long n = 0;
  for (const auto& [concept_id, members] : unary_) n += members.size();
  for (const auto& [predicate_id, pairs] : binary_) n += pairs.size();
  return n;
}

std::string DataInstance::ToString() const {
  std::string out;
  for (const auto& [concept_id, members] : unary_) {
    for (int a : members) {
      out += vocabulary_->ConceptName(concept_id) + "(" +
             vocabulary_->IndividualName(a) + ").\n";
    }
  }
  for (const auto& [predicate_id, pairs] : binary_) {
    for (auto [a, b] : pairs) {
      out += vocabulary_->PredicateName(predicate_id) + "(" +
             vocabulary_->IndividualName(a) + ", " +
             vocabulary_->IndividualName(b) + ").\n";
    }
  }
  return out;
}

}  // namespace owlqr
