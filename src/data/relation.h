#ifndef OWLQR_DATA_RELATION_H_
#define OWLQR_DATA_RELATION_H_

// Relation storage shared by the NDL evaluator and the engine's data
// snapshots: a flat-arena tuple set with open-addressing deduplication
// (Rows) and the CSR hash index probed by the join inner loop (HashIndex).
// Both are plain data with no locking of their own; concurrent *reads* of a
// fully built Rows/HashIndex are safe, and writers must be externally
// single-threaded (the evaluator's single-writer-per-relation invariant,
// the snapshot's build-then-freeze lifecycle).

#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <utility>
#include <vector>

namespace owlqr {

namespace relation_internal {

constexpr size_t kHashSeed = 0x9e3779b97f4a7c15ULL;
constexpr size_t kFnvBasis = 1469598103934665603ULL;

inline size_t Mix(size_t h, size_t v) {
  h ^= v + kHashSeed + (h << 6) + (h >> 2);
  return h;
}

// murmur3 finaliser: the open-addressing dedup table masks the *low* bits
// of the hash, so they must avalanche (Mix alone clusters badly on the
// dense sequential ids a vocabulary produces).
inline size_t FinalMix(size_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

}  // namespace relation_internal

// The tuple hash, with the loop dispatched on arity so the ubiquitous small
// cases (concepts are unary; roles, equality keys and most IDB predicates
// binary) inline fully at the call sites in the insert and probe hot paths.
// All arms compute the identical value.
inline size_t HashTuple(const int* tuple, int arity) {
  using relation_internal::FinalMix;
  using relation_internal::kFnvBasis;
  using relation_internal::Mix;
  switch (arity) {
    case 1:
      return FinalMix(Mix(kFnvBasis, static_cast<size_t>(tuple[0]) + 1));
    case 2:
      return FinalMix(Mix(Mix(kFnvBasis, static_cast<size_t>(tuple[0]) + 1),
                          static_cast<size_t>(tuple[1]) + 1));
    default: {
      size_t h = kFnvBasis;
      for (int i = 0; i < arity; ++i) {
        h = Mix(h, static_cast<size_t>(tuple[i]) + 1);
      }
      return FinalMix(h);
    }
  }
}

// Batched tuple hashing for the vector-at-a-time join executor: hashes `n`
// row-major keys of `arity` ints each into `out`.  Each arm is one tight
// loop with no per-element branching, so the compiler can vectorise it;
// every value is identical to HashTuple on the same key.
inline void HashTupleBatch(const int* keys, int arity, size_t n,
                           size_t* out) {
  using relation_internal::FinalMix;
  using relation_internal::kFnvBasis;
  using relation_internal::Mix;
  switch (arity) {
    case 1:
      for (size_t i = 0; i < n; ++i) {
        out[i] = FinalMix(Mix(kFnvBasis, static_cast<size_t>(keys[i]) + 1));
      }
      break;
    case 2:
      for (size_t i = 0; i < n; ++i) {
        out[i] = FinalMix(
            Mix(Mix(kFnvBasis, static_cast<size_t>(keys[2 * i]) + 1),
                static_cast<size_t>(keys[2 * i + 1]) + 1));
      }
      break;
    default:
      for (size_t i = 0; i < n; ++i) {
        out[i] = HashTuple(keys + static_cast<size_t>(arity) * i, arity);
      }
      break;
  }
}

// One predicate's extension: a flat row-major arena of `arity`-strided
// cells plus an open-addressing dedup table (slot = row index + 1).
struct Rows {
  int arity = 0;
  std::vector<int> cells;
  bool materialized = false;
  // True when a deadline abort stopped materialisation partway: the rows
  // present are valid, but the extension is incomplete.
  bool partial = false;

  Rows() = default;
  // Deep copy (the copy-on-write step of DataSnapshot::ApplyFacts).
  Rows(const Rows&) = default;
  Rows& operator=(const Rows&) = default;
  Rows(Rows&&) noexcept = default;
  Rows& operator=(Rows&&) noexcept = default;

  size_t size() const { return num_rows_; }
  const int* row(size_t r) const {
    return cells.data() + r * static_cast<size_t>(arity);
  }
  // Heap bytes held by this relation: the cells arena plus whichever dedup
  // table is live.  The number a MemoryAccount is charged for the relation
  // (capacities, not sizes — what the allocator actually handed out).
  size_t MemoryBytes() const {
    return cells.capacity() * sizeof(int) +
           slots_.capacity() * sizeof(uint32_t) +
           small_.size * sizeof(SmallSlot);
  }
  // Inserts `tuple` (arity ints) if new; returns whether it was new.
  // A relation at the row ceiling (2^32-2 rows, the last id the 32-bit
  // dedup slots can hold; see SetMaxRowsForTest) refuses the insert and
  // marks itself `partial` instead of corrupting deduplication — callers
  // that can abort must treat a partial output relation like any other
  // truncation (the evaluator aborts at its next limit flush).
  bool Insert(const int* tuple);
  // Batched Insert for the vector-at-a-time emit path: inserts `n`
  // row-major tuples given their precomputed HashTuple values (one
  // HashTupleBatch call hashes the whole run in a vectorisable loop),
  // records the batch-local indices of the genuinely new tuples in
  // `new_idx` (caller-allocated, at least n long) and returns their count.
  // The dedup slot of an upcoming tuple is prefetched while the current one
  // probes.  Outcome — row order, duplicate handling, table growth points,
  // ceiling refusals — is identical to n sequential Insert calls.
  size_t InsertBatch(const int* tuples, size_t n, const size_t* hashes,
                     uint32_t* new_idx);
  // True iff `tuple` is already present.  The const dedup probe of Insert
  // (no growth, no mutation): DataSnapshot::WithFacts uses it to filter a
  // fact batch against the parent relation before deciding to deep-copy.
  bool Contains(const int* tuple) const;
  // True iff the relation has hit the row ceiling and dropped an insert.
  bool AtRowCeiling() const { return at_row_ceiling_; }
  // Test hook: lowers the row ceiling process-wide so ceiling behaviour is
  // testable without 2^32 rows.  0 restores the real ceiling.  Not for
  // production use; set only while no evaluation is running.
  static void SetMaxRowsForTest(size_t max_rows);
  // Hint that the relation will reach about `expected_rows` rows: sizes
  // the dedup table once instead of growing through the doubling cascade
  // (bounded, so a wildly selective join cannot over-allocate; a relation
  // that outgrows the hint just resumes doubling).
  void Reserve(size_t expected_rows);

  // Bulk load for the durable store's columnar segments: adopts `num_rows`
  // row-major tuples that are KNOWN distinct (a segment column is the
  // verbatim arena of an already deduplicated relation) into an empty
  // relation.  One memcpy plus one presized dedup-table placement pass —
  // no per-row probe/growth cascade, which is what lets a snapshot load
  // without a row-by-row rebuild.  The result is indistinguishable from
  // num_rows sequential Insert calls of the same tuples.
  void AdoptColumn(int arity_in, const int* column, size_t num_rows);

  std::vector<std::vector<int>> ToTuples() const;
  // ToTuples() in lexicographic order, sorting row indices over the flat
  // arena and materialising the per-tuple vectors once (the sorted output
  // is byte-identical to sorting ToTuples(), without the intermediate
  // copy-then-shuffle of arity-sized heap vectors).
  std::vector<std::vector<int>> ToSortedTuples() const;

 private:
  // Dedup entry for arity <= 2 (every concept, role and rewriting-
  // produced predicate): the tuple packed beside the row id, so the
  // duplicate check reads one slot instead of chasing from the slot
  // table into the cells arena, and rehashing touches neither the arena
  // nor the hash function (the low hash bits ride in what would be
  // padding; they cover any table below 2^32 slots, and a larger one
  // merely clusters, it does not break the probe sequence).
  struct SmallSlot {
    uint64_t key = 0;
    uint32_t id = 0;      // Row index + 1; 0 = empty.
    uint32_t hash32 = 0;  // Low 32 bits of the tuple hash.
  };

  // Zero-initialised slot array allocated with calloc: for the table
  // sizes a Reserve hint creates, the allocator hands back lazily zeroed
  // pages, so sizing a big table does not pay an eager memset over slots
  // that may never be touched (a std::vector fill would).
  struct SlotBuffer {
    SlotBuffer() = default;
    explicit SlotBuffer(size_t n);
    SlotBuffer(const SlotBuffer& o);
    SlotBuffer& operator=(const SlotBuffer& o);
    SlotBuffer(SlotBuffer&& o) noexcept : data(o.data), size(o.size) {
      o.data = nullptr;
      o.size = 0;
    }
    SlotBuffer& operator=(SlotBuffer&& o) noexcept;
    ~SlotBuffer();

    SmallSlot& operator[](size_t i) { return data[i]; }
    const SmallSlot& operator[](size_t i) const { return data[i]; }

    SmallSlot* data = nullptr;
    size_t size = 0;
  };

  bool InsertSmall(const int* tuple);
  bool InsertWide(const int* tuple);
  void RehashSmall(size_t capacity);
  void GrowSmall();
  void GrowWide();

  size_t num_rows_ = 0;
  bool at_row_ceiling_ = false;     // A ceiling refusal happened; see Insert.
  std::vector<uint32_t> slots_;     // Arity >= 3; power of two; 0 = empty.
  SlotBuffer small_;                // Arity 1-2; power-of-two sized.
};

// Hash index on the positions set in `mask` (bit i = position i bound):
// key hash -> rows whose key matches (collisions compared by the caller).
// Flat open-addressing table over power-of-two slots with the row ids of
// each key contiguous in `ids` (CSR layout): a probe is one scan of the
// flat `hashes` array plus a contiguous candidate range, with none of the
// per-bucket pointer chasing of a node-based map.
// Keys are matched by the low 32 hash bits only (0 remapped to 1 as the
// empty marker) — sound because index consumers already treat a hash
// match as a candidate and verify the key positions against the row.
struct HashIndex {
  size_t mask = 0;                // slots - 1.
  std::vector<uint32_t> hashes;   // 0 = empty slot.
  std::vector<uint32_t> starts;   // Slot -> first candidate in `ids`.
  std::vector<uint32_t> ends;     // Slot -> one past the last candidate.
  std::vector<uint32_t> ids;      // Row ids, grouped by key, row order.

  // Heap bytes held by the index's four flat arrays (capacities, matching
  // Rows::MemoryBytes), for probe-index memory accounting.
  size_t MemoryBytes() const {
    return (hashes.capacity() + starts.capacity() + ends.capacity() +
            ids.capacity()) *
           sizeof(uint32_t);
  }

  // Bulk probe for the batch executor: resolves `n` hashes to candidate
  // ranges as [begin[i], end[i]) offsets into `ids` (begin == end when the
  // key is absent).  Offsets rather than pointers so the caller's per-batch
  // range arrays stay 32-bit; the slot of the next probe is prefetched
  // while the current one resolves.  Equivalent to n Find calls.
  void FindBatch(const size_t* h, size_t n, uint32_t* out_begin,
                 uint32_t* out_end) const {
    if (hashes.empty()) {
      for (size_t i = 0; i < n; ++i) {
        out_begin[i] = 0;
        out_end[i] = 0;
      }
      return;
    }
    for (size_t i = 0; i < n; ++i) {
      if (i + 1 < n) {
        uint32_t ahead = static_cast<uint32_t>(h[i + 1]);
        if (ahead == 0) ahead = 1;
        __builtin_prefetch(hashes.data() + (ahead & mask));
      }
      uint32_t want = static_cast<uint32_t>(h[i]);
      if (want == 0) want = 1;
      size_t pos = want & mask;
      uint32_t begin = 0;
      uint32_t end = 0;
      while (true) {
        uint32_t stored = hashes[pos];
        if (stored == want) {
          begin = starts[pos];
          end = ends[pos];
          break;
        }
        if (stored == 0) break;
        pos = (pos + 1) & mask;
      }
      out_begin[i] = begin;
      out_end[i] = end;
    }
  }

  // Candidates for `h` as a [first, last) range (nullptrs when absent).
  std::pair<const uint32_t*, const uint32_t*> Find(size_t h) const {
    if (hashes.empty()) return {nullptr, nullptr};
    uint32_t want = static_cast<uint32_t>(h);
    if (want == 0) want = 1;
    size_t pos = want & mask;
    while (true) {
      uint32_t stored = hashes[pos];
      if (stored == want) {
        return {ids.data() + starts[pos], ids.data() + ends[pos]};
      }
      if (stored == 0) return {nullptr, nullptr};
      pos = (pos + 1) & mask;
    }
  }
};

// A lazily built HashIndex: the once_flag makes concurrent consumers agree
// on a single build.
struct IndexSlot {
  std::once_flag built;
  HashIndex index;
};

// Builds the index of `rows` on the key positions in `mask`.  `poll_abort`
// (nullable) is consulted every kRelationAbortInterval rows; returning true
// stops the build, leaving a *partial* index — callers that can abort must
// not let anyone probe a partial index (the evaluator's aborted_ flag does
// this).  Returns false iff the build was aborted.
using AbortPoll = bool (*)(void*);
bool BuildHashIndex(const Rows& rows, unsigned mask, HashIndex* index,
                    AbortPoll poll_abort = nullptr, void* poll_arg = nullptr);

// How often (in rows) BuildHashIndex polls `poll_abort`; power of two,
// matching the evaluator's deadline-poll cadence.
constexpr long kRelationAbortInterval = 1024;

}  // namespace owlqr

#endif  // OWLQR_DATA_RELATION_H_
