#ifndef OWLQR_DATA_COMPLETION_H_
#define OWLQR_DATA_COMPLETION_H_

#include "data/data_instance.h"
#include "ontology/saturation.h"
#include "ontology/tbox.h"

namespace owlqr {

// Returns the completion of `instance` for the (normalized, bottom-free)
// ontology: the least instance containing `instance` that is complete, i.e.
// contains every ground atom S(a) with T, A |= S(a) over ind(A).
DataInstance CompleteInstance(const DataInstance& instance, const TBox& tbox,
                              const Saturation& saturation);

// True iff `instance` is complete for the ontology.
bool IsComplete(const DataInstance& instance, const TBox& tbox,
                const Saturation& saturation);

}  // namespace owlqr

#endif  // OWLQR_DATA_COMPLETION_H_
