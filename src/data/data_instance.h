#ifndef OWLQR_DATA_DATA_INSTANCE_H_
#define OWLQR_DATA_DATA_INSTANCE_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ontology/role.h"
#include "ontology/vocabulary.h"

namespace owlqr {

// A data instance (ABox): a finite set of unary ground atoms A(a) and binary
// ground atoms P(a, b).  Individuals are vocabulary individual ids; ind(A) is
// the set of individuals occurring in the instance (or explicitly added).
class DataInstance {
 public:
  explicit DataInstance(Vocabulary* vocabulary) : vocabulary_(vocabulary) {}

  Vocabulary* vocabulary() const { return vocabulary_; }

  // Ensures `individual` is in ind(A) even without any atom on it.
  void AddIndividual(int individual);
  int AddIndividual(std::string_view name);

  void AddConceptAssertion(int concept_id, int individual);
  void AddRoleAssertion(int predicate_id, int subject, int object);
  // rho(a, b): adds P(a, b) or P(b, a) depending on the role direction.
  void AddRoleAssertionForRole(RoleId role, int a, int b);

  // By-name convenience builders.
  void Assert(std::string_view concept_name, std::string_view individual);
  void Assert(std::string_view predicate_name, std::string_view subject,
              std::string_view object);

  bool HasConceptAssertion(int concept_id, int individual) const;
  bool HasRoleAssertion(int predicate_id, int subject, int object) const;
  // rho(a, b) in the sense of the paper's notation.
  bool HasRoleAssertionForRole(RoleId role, int a, int b) const;

  const std::vector<int>& individuals() const { return individuals_; }
  int num_individuals() const { return static_cast<int>(individuals_.size()); }

  // Sorted, deduplicated fact lists (empty for unknown symbols).
  const std::vector<int>& ConceptMembers(int concept_id) const;
  const std::vector<std::pair<int, int>>& RolePairs(int predicate_id) const;

  // All concepts/predicates with at least one fact.
  std::vector<int> ActiveConcepts() const;
  std::vector<int> ActivePredicates() const;

  long NumAtoms() const;

  std::string ToString() const;

 private:
  Vocabulary* vocabulary_;  // Not owned.
  std::vector<int> individuals_;  // Sorted.
  std::set<int> individual_set_;
  std::map<int, std::vector<int>> unary_;  // concept -> sorted members.
  std::map<int, std::set<int>> unary_sets_;
  std::map<int, std::vector<std::pair<int, int>>> binary_;
  std::map<int, std::set<std::pair<int, int>>> binary_sets_;
};

}  // namespace owlqr

#endif  // OWLQR_DATA_DATA_INSTANCE_H_
