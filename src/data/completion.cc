#include "data/completion.h"

#include <set>

namespace owlqr {

DataInstance CompleteInstance(const DataInstance& instance, const TBox& tbox,
                              const Saturation& saturation) {
  (void)tbox;
  Vocabulary* vocab = instance.vocabulary();
  DataInstance out(vocab);
  for (int a : instance.individuals()) out.AddIndividual(a);

  // Basic concepts known to hold at each individual.
  std::map<int, std::set<int>> held_concepts;  // individual -> concept nodes.
  std::vector<int> top_supers =
      saturation.AtomicSuperConcepts(BasicConcept::Top());

  auto add_entailed = [&](int individual, const BasicConcept& basic) {
    for (int c : saturation.AtomicSuperConcepts(basic)) {
      out.AddConceptAssertion(c, individual);
    }
  };

  for (int a : instance.individuals()) {
    for (int c : top_supers) out.AddConceptAssertion(c, a);
  }
  for (int concept_id : instance.ActiveConcepts()) {
    for (int a : instance.ConceptMembers(concept_id)) {
      out.AddConceptAssertion(concept_id, a);
      add_entailed(a, BasicConcept::Atomic(concept_id));
    }
  }
  for (int predicate_id : instance.ActivePredicates()) {
    RoleId forward = RoleOf(predicate_id, false);
    for (auto [a, b] : instance.RolePairs(predicate_id)) {
      // Role-inclusion consequences.
      for (RoleId super : saturation.SuperRoles(forward)) {
        out.AddRoleAssertionForRole(super, a, b);
      }
      // Existential consequences at both ends.
      add_entailed(a, BasicConcept::Exists(forward));
      add_entailed(b, BasicConcept::Exists(Inverse(forward)));
    }
  }
  // Reflexivity: P(a, a) for every individual and reflexive P.
  for (RoleId rho : saturation.ReflexiveRoles()) {
    if (IsInverse(rho)) continue;
    for (int a : instance.individuals()) {
      out.AddRoleAssertion(PredicateOf(rho), a, a);
    }
  }
  return out;
}

bool IsComplete(const DataInstance& instance, const TBox& tbox,
                const Saturation& saturation) {
  DataInstance completed = CompleteInstance(instance, tbox, saturation);
  return completed.NumAtoms() == instance.NumAtoms();
}

}  // namespace owlqr
