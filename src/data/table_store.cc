#include "data/table_store.h"

#include <algorithm>
#include <set>

#include "util/logging.h"

namespace owlqr {

int TableStore::AddTable(std::string_view name, int arity) {
  auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) {
    OWLQR_CHECK_MSG(arities_[it->second] == arity,
                    "table re-declared with a different arity");
    return it->second;
  }
  names_.emplace_back(name);
  arities_.push_back(arity);
  rows_.emplace_back();
  int id = num_tables() - 1;
  by_name_.emplace(names_.back(), id);
  return id;
}

int TableStore::FindTable(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? -1 : it->second;
}

void TableStore::AddRow(int table, std::vector<int> row) {
  OWLQR_CHECK(table >= 0 && table < num_tables());
  OWLQR_CHECK(static_cast<int>(row.size()) == arities_[table]);
  rows_[table].push_back(std::move(row));
}

void TableStore::AddRow(std::string_view table_name,
                        const std::vector<std::string>& row) {
  int table = AddTable(table_name, static_cast<int>(row.size()));
  std::vector<int> ids;
  ids.reserve(row.size());
  for (const std::string& cell : row) {
    ids.push_back(vocabulary_->InternIndividual(cell));
  }
  AddRow(table, std::move(ids));
}

std::vector<int> TableStore::ActiveDomain() const {
  std::set<int> domain;
  for (const auto& table : rows_) {
    for (const auto& row : table) domain.insert(row.begin(), row.end());
  }
  return {domain.begin(), domain.end()};
}

long TableStore::NumRows() const {
  long n = 0;
  for (const auto& table : rows_) n += static_cast<long>(table.size());
  return n;
}

}  // namespace owlqr
