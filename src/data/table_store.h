#ifndef OWLQR_DATA_TABLE_STORE_H_
#define OWLQR_DATA_TABLE_STORE_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "ontology/vocabulary.h"

namespace owlqr {

// A relational source database for the OBDA mapping layer: named tables of
// arbitrary arity whose cells are vocabulary individuals.  This is the "D"
// in the paper's introduction, connected to the ontology vocabulary by a
// GAV mapping M (core/mapping.h).
class TableStore {
 public:
  explicit TableStore(Vocabulary* vocabulary) : vocabulary_(vocabulary) {}

  Vocabulary* vocabulary() const { return vocabulary_; }

  // Declares (or finds) a table; re-declaring with a different arity aborts.
  int AddTable(std::string_view name, int arity);
  int FindTable(std::string_view name) const;
  const std::string& TableName(int table) const { return names_[table]; }
  int TableArity(int table) const { return arities_[table]; }
  int num_tables() const { return static_cast<int>(names_.size()); }

  void AddRow(int table, std::vector<int> row);
  // Convenience: individuals by name.
  void AddRow(std::string_view table_name,
              const std::vector<std::string>& row);

  const std::vector<std::vector<int>>& Rows(int table) const {
    return rows_[table];
  }

  // All individuals occurring in any cell, sorted (the active domain of D).
  std::vector<int> ActiveDomain() const;

  long NumRows() const;

 private:
  Vocabulary* vocabulary_;  // Not owned.
  std::vector<std::string> names_;
  std::vector<int> arities_;
  std::vector<std::vector<std::vector<int>>> rows_;
  std::map<std::string, int> by_name_;
};

}  // namespace owlqr

#endif  // OWLQR_DATA_TABLE_STORE_H_
