#ifndef OWLQR_DATA_SNAPSHOT_H_
#define OWLQR_DATA_SNAPSHOT_H_

// Immutable, shareable EDB state for the prepared-OMQ engine.
//
// A DataSnapshot freezes one version of the data instance into the exact
// form the evaluator's hot path consumes: flat Rows arenas per concept /
// role / source table, the sorted active domain, and a shared per-relation
// hash-index cache.  Snapshots are handed out as shared_ptr<const
// DataSnapshot>; an execution pins the version it started on and is
// unaffected by later updates.  Updates never mutate a snapshot — ApplyFacts
// goes through WithFacts, which builds a *new* snapshot copy-on-write:
// untouched relations are shared with the parent (a shared_ptr copy per
// entry), only relations an update actually grows are deep-copied.
//
// Thread-safety: everything here is either immutable after construction or
// (the index cache) guarded by a per-relation state machine, so any number
// of concurrent evaluations may share one snapshot.  Index builds honour
// the requesting execution's abort poll (deadline / cancel token) — a cold
// index over a huge EDB must not block cancellation — but an aborted build
// is DISCARDED, never published: the slot resets to empty and the next
// request rebuilds from scratch, so shared state only ever holds complete
// indexes and a deadline-aborted partial index can never poison later
// queries.

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "data/data_instance.h"
#include "data/relation.h"
#include "data/table_store.h"

namespace owlqr {

// One frozen EDB relation plus its lazily built, shared index cache.
class EdbRelation {
 public:
  explicit EdbRelation(int arity) {
    rows_.arity = arity;
    rows_.materialized = true;
  }
  // Copies the rows but starts a fresh (empty) index cache: the copy is
  // about to be grown by WithFacts, so the parent's indexes are stale.
  EdbRelation(const EdbRelation& o) : rows_(o.rows_) {}
  EdbRelation& operator=(const EdbRelation&) = delete;

  const Rows& rows() const { return rows_; }
  // Build-phase only: callers must not hand the relation to readers until
  // they are done inserting.
  Rows* mutable_rows() { return &rows_; }

  // The hash index on the key positions in `mask`, built on first use and
  // shared by every execution thereafter.  `built_now` (nullable) reports
  // whether this call performed the build, so per-request stats can count
  // only the builds a request actually paid for.
  //
  // `poll_abort` (nullable) is the requesting execution's cooperative abort
  // signal (deadline expired, cancel token fired); it is polled both during
  // a build this call performs and while waiting for another thread's
  // build.  Returns null iff the poll fired — the partial build (if any)
  // is discarded and the slot reset, so a later request rebuilds a
  // complete index; the shared cache never holds partial state.
  const HashIndex* Index(unsigned mask, AbortPoll poll_abort, void* poll_arg,
                         bool* built_now = nullptr) const;
  // Non-abortable convenience (engine-lifetime callers with no request
  // context); never returns null.
  const HashIndex& Index(unsigned mask, bool* built_now = nullptr) const {
    return *Index(mask, nullptr, nullptr, built_now);
  }

 private:
  // One (relation, mask) cache entry: empty until someone builds, building
  // while exactly one thread owns the (unlocked) build, ready once a
  // complete index is published.  An aborted build resets to empty.
  struct SharedIndexSlot {
    enum class State { kEmpty, kBuilding, kReady };
    State state = State::kEmpty;
    HashIndex index;
  };

  Rows rows_;
  // Guards the shape of `slots_` and every slot's `state`; builds run with
  // the mutex released.  Waiters block on `slot_cv_` (shared across masks —
  // contention is build-rare) and re-poll their abort signal periodically.
  mutable std::mutex slot_mutex_;
  mutable std::condition_variable slot_cv_;
  mutable std::unordered_map<unsigned, std::unique_ptr<SharedIndexSlot>>
      slots_;
};

// The per-relation description of exactly which rows a WithFacts call
// appended relative to its parent snapshot, keyed by external id.  Row data
// is flat (concepts stride 1, roles stride 2) and already deduplicated
// against both the batch and the parent, so a delta row is guaranteed new
// at the version it describes.  `new_individuals` is the sorted set of
// individuals that entered the active domain — the delta of the TOP/adom
// relation, and (paired with itself) of the equality relation.
struct SnapshotDelta {
  std::unordered_map<int, std::vector<int>> concept_rows;
  std::unordered_map<int, std::vector<int>> role_rows;
  std::vector<int> new_individuals;

  bool empty() const {
    return concept_rows.empty() && role_rows.empty() &&
           new_individuals.empty();
  }
  // Folds `other` (a later version's delta) into this one, so consecutive
  // deltas compose into one version-range delta.  Rows stay disjoint
  // because each delta only holds rows new at its own version.
  void MergeFrom(const SnapshotDelta& other);
};

// A batch of ABox additions for Engine::ApplyFacts, by vocabulary ids.
// (Name-based convenience lives with the callers that own a Vocabulary.)
struct FactBatch {
  struct ConceptFact {
    int concept_id = 0;
    int individual = 0;
  };
  struct RoleFact {
    int role_id = 0;
    int subject = 0;
    int object = 0;
  };
  std::vector<ConceptFact> concepts;
  std::vector<RoleFact> roles;

  bool empty() const { return concepts.empty() && roles.empty(); }
};

// Where a store-backed snapshot's cold columns come from: the durable
// store's newest segment (store/segment.h implements this over the mmap'd
// column files).  LoadColumn must return the complete frozen extension of
// concept (role == false) / role (role == true) `id` — a live vocabulary
// id the source advertised at recovery — and must be safe to call from any
// number of threads.  It is never called for ids the source did not
// advertise.
class ColumnSource {
 public:
  virtual ~ColumnSource() = default;
  virtual std::shared_ptr<const EdbRelation> LoadColumn(bool role,
                                                        int id) const = 0;
};

class DataSnapshot : public std::enable_shared_from_this<DataSnapshot> {
 public:
  // Freezes `data` (and, if given, the mapping-layer source tables) into
  // version 1 of a snapshot chain.
  static std::shared_ptr<const DataSnapshot> FromInstance(
      const DataInstance& data, const TableStore* tables = nullptr);

  // Rebuilds a snapshot from a durable store's columnar segment:
  // `concepts` / `roles` hold the eagerly loaded (resident) relations,
  // `cold_concepts` / `cold_roles` (sorted live ids) the columns left on
  // disk, and `source` serves a cold column the first time an evaluation
  // touches it.  A faulted-in column stays resident for this snapshot's
  // lifetime — executions pin snapshots, so dropping one mid-flight would
  // dangle the raw pointers Concept()/Role() hand out; residency is
  // re-decided per snapshot, not per query.  `num_atoms` counts ALL
  // columns, cold included (the segment's META knows every row count).
  static std::shared_ptr<const DataSnapshot> FromColumns(
      uint64_t version, long num_atoms, std::vector<int> active_domain,
      std::unordered_map<int, std::shared_ptr<const EdbRelation>> concepts,
      std::unordered_map<int, std::shared_ptr<const EdbRelation>> roles,
      std::vector<int> cold_concepts, std::vector<int> cold_roles,
      std::shared_ptr<const ColumnSource> source);

  // The copy-on-write update: a new snapshot whose touched concept / role
  // relations are deep-copied and grown by `batch`, with every other
  // relation shared with `this`.  Individuals mentioned by the batch join
  // the active domain.  `this` is unchanged; executions holding it run on.
  //
  // The batch is deduplicated against both itself and the parent before
  // anything is copied: a fact already present contributes nothing, and a
  // batch with no genuinely new facts returns `this` unchanged — same
  // version(), no copy, so re-asserting known facts is free and can never
  // inflate num_atoms() or fabricate phantom delta rows.
  //
  // `delta` (nullable) receives the exact appended rows (see SnapshotDelta);
  // it is cleared first and left empty on the no-op path.
  std::shared_ptr<const DataSnapshot> WithFacts(
      const FactBatch& batch, SnapshotDelta* delta = nullptr) const;

  // Monotonically increasing along a WithFacts chain (starts at 1).
  uint64_t version() const { return version_; }

  // Sorted union of the instance's individuals and the source tables'
  // cells — the evaluator's ind(A) for equality and TOP atoms.
  const std::vector<int>& active_domain() const { return active_domain_; }
  // active_domain() as an arity-1 relation (the TOP predicate's extension).
  const EdbRelation& adom() const { return *adom_; }

  // Relation lookups by external (vocabulary / table-store) id; null when
  // the snapshot holds no facts for that id (callers substitute an empty
  // relation of the right arity).  On a store-backed snapshot a cold column
  // is faulted in from the ColumnSource on first touch and stays resident
  // for the snapshot's lifetime; the returned pointer is stable either way.
  const EdbRelation* Concept(int concept_id) const;
  const EdbRelation* Role(int role_id) const;
  const EdbRelation* Table(int table_id) const;

  // Residency diagnostics for store-backed snapshots: columns held in
  // memory (eager + faulted-in) vs columns still cold on disk.  A snapshot
  // with no ColumnSource reports everything resident.
  size_t ResidentColumns() const;
  size_t ColdColumns() const;

  // Whole-map views of the RESIDENT relations, for cost statistics and
  // diagnostics; cold columns are not listed (see cold_concepts()).
  const std::unordered_map<int, std::shared_ptr<const EdbRelation>>&
  concepts() const {
    return concepts_;
  }
  const std::unordered_map<int, std::shared_ptr<const EdbRelation>>& roles()
      const {
    return roles_;
  }
  // Sorted live ids of the columns this snapshot still serves from its
  // ColumnSource (minus any already faulted in), plus the source itself —
  // the store's checkpoint writer streams cold columns straight from here
  // without making them resident.
  const std::vector<int>& cold_concepts() const { return cold_concepts_; }
  const std::vector<int>& cold_roles() const { return cold_roles_; }
  const std::shared_ptr<const ColumnSource>& column_source() const {
    return source_;
  }

  // Total concept + role facts (the |A| of the paper's data complexity).
  long num_atoms() const { return num_atoms_; }

 private:
  DataSnapshot() = default;

  // Serves `id` from the resident map, else faults it in from source_
  // under lazy_mutex_ (mirroring the index cache's publish-once pattern).
  const EdbRelation* LookupOrFault(
      const std::unordered_map<int, std::shared_ptr<const EdbRelation>>&
          resident,
      const std::vector<int>& cold,
      std::unordered_map<int, std::shared_ptr<const EdbRelation>>* lazy,
      bool role, int id) const;

  std::unordered_map<int, std::shared_ptr<const EdbRelation>> concepts_;
  std::unordered_map<int, std::shared_ptr<const EdbRelation>> roles_;
  std::unordered_map<int, std::shared_ptr<const EdbRelation>> tables_;
  std::shared_ptr<const EdbRelation> adom_;
  std::vector<int> active_domain_;
  long num_atoms_ = 0;
  uint64_t version_ = 1;

  // Store-backed snapshots only: the cold-column source, the sorted ids it
  // still serves, and the faulted-in overlay.  The overlay is additive for
  // the snapshot's lifetime (entries are inserted, never removed, and the
  // shared_ptr'd relations never move), so a pointer handed out under the
  // mutex stays valid without it.
  std::shared_ptr<const ColumnSource> source_;
  std::vector<int> cold_concepts_;
  std::vector<int> cold_roles_;
  mutable std::mutex lazy_mutex_;
  mutable std::unordered_map<int, std::shared_ptr<const EdbRelation>>
      lazy_concepts_;
  mutable std::unordered_map<int, std::shared_ptr<const EdbRelation>>
      lazy_roles_;
};

}  // namespace owlqr

#endif  // OWLQR_DATA_SNAPSHOT_H_
