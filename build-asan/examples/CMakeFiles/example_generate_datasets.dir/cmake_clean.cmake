file(REMOVE_RECURSE
  "CMakeFiles/example_generate_datasets.dir/generate_datasets.cpp.o"
  "CMakeFiles/example_generate_datasets.dir/generate_datasets.cpp.o.d"
  "example_generate_datasets"
  "example_generate_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_generate_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
