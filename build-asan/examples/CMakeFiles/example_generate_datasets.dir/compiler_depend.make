# Empty compiler generated dependencies file for example_generate_datasets.
# This may be replaced when dependencies are built.
