# Empty dependencies file for example_obda_mapping.
# This may be replaced when dependencies are built.
