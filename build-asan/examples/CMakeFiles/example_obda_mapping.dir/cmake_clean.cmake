file(REMOVE_RECURSE
  "CMakeFiles/example_obda_mapping.dir/obda_mapping.cpp.o"
  "CMakeFiles/example_obda_mapping.dir/obda_mapping.cpp.o.d"
  "example_obda_mapping"
  "example_obda_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_obda_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
