file(REMOVE_RECURSE
  "CMakeFiles/example_owlqr_cli.dir/owlqr_cli.cpp.o"
  "CMakeFiles/example_owlqr_cli.dir/owlqr_cli.cpp.o.d"
  "example_owlqr_cli"
  "example_owlqr_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_owlqr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
