# Empty compiler generated dependencies file for example_owlqr_cli.
# This may be replaced when dependencies are built.
