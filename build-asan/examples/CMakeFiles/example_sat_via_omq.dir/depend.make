# Empty dependencies file for example_sat_via_omq.
# This may be replaced when dependencies are built.
