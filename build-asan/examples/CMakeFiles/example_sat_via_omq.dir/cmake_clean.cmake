file(REMOVE_RECURSE
  "CMakeFiles/example_sat_via_omq.dir/sat_via_omq.cpp.o"
  "CMakeFiles/example_sat_via_omq.dir/sat_via_omq.cpp.o.d"
  "example_sat_via_omq"
  "example_sat_via_omq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sat_via_omq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
