# Empty dependencies file for example_university_obda.
# This may be replaced when dependencies are built.
