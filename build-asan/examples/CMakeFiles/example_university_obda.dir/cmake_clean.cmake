file(REMOVE_RECURSE
  "CMakeFiles/example_university_obda.dir/university_obda.cpp.o"
  "CMakeFiles/example_university_obda.dir/university_obda.cpp.o.d"
  "example_university_obda"
  "example_university_obda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_university_obda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
