file(REMOVE_RECURSE
  "CMakeFiles/owlqr_sanitize_tests.dir/evaluator_limits_test.cc.o"
  "CMakeFiles/owlqr_sanitize_tests.dir/evaluator_limits_test.cc.o.d"
  "CMakeFiles/owlqr_sanitize_tests.dir/parallel_evaluator_test.cc.o"
  "CMakeFiles/owlqr_sanitize_tests.dir/parallel_evaluator_test.cc.o.d"
  "owlqr_sanitize_tests"
  "owlqr_sanitize_tests.pdb"
  "owlqr_sanitize_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/owlqr_sanitize_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
