# Empty dependencies file for owlqr_sanitize_tests.
# This may be replaced when dependencies are built.
