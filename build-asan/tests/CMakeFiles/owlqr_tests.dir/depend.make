# Empty dependencies file for owlqr_tests.
# This may be replaced when dependencies are built.
