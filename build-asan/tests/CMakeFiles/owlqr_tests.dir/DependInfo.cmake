
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/api_misuse_test.cc" "tests/CMakeFiles/owlqr_tests.dir/api_misuse_test.cc.o" "gcc" "tests/CMakeFiles/owlqr_tests.dir/api_misuse_test.cc.o.d"
  "/root/repo/tests/chase_test.cc" "tests/CMakeFiles/owlqr_tests.dir/chase_test.cc.o" "gcc" "tests/CMakeFiles/owlqr_tests.dir/chase_test.cc.o.d"
  "/root/repo/tests/complexity_properties_test.cc" "tests/CMakeFiles/owlqr_tests.dir/complexity_properties_test.cc.o" "gcc" "tests/CMakeFiles/owlqr_tests.dir/complexity_properties_test.cc.o.d"
  "/root/repo/tests/containers_test.cc" "tests/CMakeFiles/owlqr_tests.dir/containers_test.cc.o" "gcc" "tests/CMakeFiles/owlqr_tests.dir/containers_test.cc.o.d"
  "/root/repo/tests/cost_model_test.cc" "tests/CMakeFiles/owlqr_tests.dir/cost_model_test.cc.o" "gcc" "tests/CMakeFiles/owlqr_tests.dir/cost_model_test.cc.o.d"
  "/root/repo/tests/cq_test.cc" "tests/CMakeFiles/owlqr_tests.dir/cq_test.cc.o" "gcc" "tests/CMakeFiles/owlqr_tests.dir/cq_test.cc.o.d"
  "/root/repo/tests/dot_test.cc" "tests/CMakeFiles/owlqr_tests.dir/dot_test.cc.o" "gcc" "tests/CMakeFiles/owlqr_tests.dir/dot_test.cc.o.d"
  "/root/repo/tests/evaluator_differential_test.cc" "tests/CMakeFiles/owlqr_tests.dir/evaluator_differential_test.cc.o" "gcc" "tests/CMakeFiles/owlqr_tests.dir/evaluator_differential_test.cc.o.d"
  "/root/repo/tests/evaluator_limits_test.cc" "tests/CMakeFiles/owlqr_tests.dir/evaluator_limits_test.cc.o" "gcc" "tests/CMakeFiles/owlqr_tests.dir/evaluator_limits_test.cc.o.d"
  "/root/repo/tests/fig2_regression_test.cc" "tests/CMakeFiles/owlqr_tests.dir/fig2_regression_test.cc.o" "gcc" "tests/CMakeFiles/owlqr_tests.dir/fig2_regression_test.cc.o.d"
  "/root/repo/tests/inconsistency_guard_test.cc" "tests/CMakeFiles/owlqr_tests.dir/inconsistency_guard_test.cc.o" "gcc" "tests/CMakeFiles/owlqr_tests.dir/inconsistency_guard_test.cc.o.d"
  "/root/repo/tests/linear_evaluator_test.cc" "tests/CMakeFiles/owlqr_tests.dir/linear_evaluator_test.cc.o" "gcc" "tests/CMakeFiles/owlqr_tests.dir/linear_evaluator_test.cc.o.d"
  "/root/repo/tests/log_cyclic_test.cc" "tests/CMakeFiles/owlqr_tests.dir/log_cyclic_test.cc.o" "gcc" "tests/CMakeFiles/owlqr_tests.dir/log_cyclic_test.cc.o.d"
  "/root/repo/tests/mapping_parser_test.cc" "tests/CMakeFiles/owlqr_tests.dir/mapping_parser_test.cc.o" "gcc" "tests/CMakeFiles/owlqr_tests.dir/mapping_parser_test.cc.o.d"
  "/root/repo/tests/mapping_test.cc" "tests/CMakeFiles/owlqr_tests.dir/mapping_test.cc.o" "gcc" "tests/CMakeFiles/owlqr_tests.dir/mapping_test.cc.o.d"
  "/root/repo/tests/ndl_parser_test.cc" "tests/CMakeFiles/owlqr_tests.dir/ndl_parser_test.cc.o" "gcc" "tests/CMakeFiles/owlqr_tests.dir/ndl_parser_test.cc.o.d"
  "/root/repo/tests/ndl_test.cc" "tests/CMakeFiles/owlqr_tests.dir/ndl_test.cc.o" "gcc" "tests/CMakeFiles/owlqr_tests.dir/ndl_test.cc.o.d"
  "/root/repo/tests/omq_test.cc" "tests/CMakeFiles/owlqr_tests.dir/omq_test.cc.o" "gcc" "tests/CMakeFiles/owlqr_tests.dir/omq_test.cc.o.d"
  "/root/repo/tests/ontology_test.cc" "tests/CMakeFiles/owlqr_tests.dir/ontology_test.cc.o" "gcc" "tests/CMakeFiles/owlqr_tests.dir/ontology_test.cc.o.d"
  "/root/repo/tests/optimize_test.cc" "tests/CMakeFiles/owlqr_tests.dir/optimize_test.cc.o" "gcc" "tests/CMakeFiles/owlqr_tests.dir/optimize_test.cc.o.d"
  "/root/repo/tests/parallel_evaluator_test.cc" "tests/CMakeFiles/owlqr_tests.dir/parallel_evaluator_test.cc.o" "gcc" "tests/CMakeFiles/owlqr_tests.dir/parallel_evaluator_test.cc.o.d"
  "/root/repo/tests/parser_fuzz_test.cc" "tests/CMakeFiles/owlqr_tests.dir/parser_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/owlqr_tests.dir/parser_fuzz_test.cc.o.d"
  "/root/repo/tests/pe_test.cc" "tests/CMakeFiles/owlqr_tests.dir/pe_test.cc.o" "gcc" "tests/CMakeFiles/owlqr_tests.dir/pe_test.cc.o.d"
  "/root/repo/tests/pe_trees_test.cc" "tests/CMakeFiles/owlqr_tests.dir/pe_trees_test.cc.o" "gcc" "tests/CMakeFiles/owlqr_tests.dir/pe_trees_test.cc.o.d"
  "/root/repo/tests/reductions_test.cc" "tests/CMakeFiles/owlqr_tests.dir/reductions_test.cc.o" "gcc" "tests/CMakeFiles/owlqr_tests.dir/reductions_test.cc.o.d"
  "/root/repo/tests/rewriter_test.cc" "tests/CMakeFiles/owlqr_tests.dir/rewriter_test.cc.o" "gcc" "tests/CMakeFiles/owlqr_tests.dir/rewriter_test.cc.o.d"
  "/root/repo/tests/sequence_sweep_test.cc" "tests/CMakeFiles/owlqr_tests.dir/sequence_sweep_test.cc.o" "gcc" "tests/CMakeFiles/owlqr_tests.dir/sequence_sweep_test.cc.o.d"
  "/root/repo/tests/sql_export_test.cc" "tests/CMakeFiles/owlqr_tests.dir/sql_export_test.cc.o" "gcc" "tests/CMakeFiles/owlqr_tests.dir/sql_export_test.cc.o.d"
  "/root/repo/tests/syntax_test.cc" "tests/CMakeFiles/owlqr_tests.dir/syntax_test.cc.o" "gcc" "tests/CMakeFiles/owlqr_tests.dir/syntax_test.cc.o.d"
  "/root/repo/tests/transforms_test.cc" "tests/CMakeFiles/owlqr_tests.dir/transforms_test.cc.o" "gcc" "tests/CMakeFiles/owlqr_tests.dir/transforms_test.cc.o.d"
  "/root/repo/tests/tree_witness_test.cc" "tests/CMakeFiles/owlqr_tests.dir/tree_witness_test.cc.o" "gcc" "tests/CMakeFiles/owlqr_tests.dir/tree_witness_test.cc.o.d"
  "/root/repo/tests/turtle_test.cc" "tests/CMakeFiles/owlqr_tests.dir/turtle_test.cc.o" "gcc" "tests/CMakeFiles/owlqr_tests.dir/turtle_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/owlqr_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/owlqr_tests.dir/util_test.cc.o.d"
  "/root/repo/tests/workloads_test.cc" "tests/CMakeFiles/owlqr_tests.dir/workloads_test.cc.o" "gcc" "tests/CMakeFiles/owlqr_tests.dir/workloads_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/owlqr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
