file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_table1_rewriting_sizes.dir/bench_fig2_table1_rewriting_sizes.cc.o"
  "CMakeFiles/bench_fig2_table1_rewriting_sizes.dir/bench_fig2_table1_rewriting_sizes.cc.o.d"
  "bench_fig2_table1_rewriting_sizes"
  "bench_fig2_table1_rewriting_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_table1_rewriting_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
