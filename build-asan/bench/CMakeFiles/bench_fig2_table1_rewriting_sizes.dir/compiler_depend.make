# Empty compiler generated dependencies file for bench_fig2_table1_rewriting_sizes.
# This may be replaced when dependencies are built.
