# Empty compiler generated dependencies file for bench_table5_eval_seq3.
# This may be replaced when dependencies are built.
