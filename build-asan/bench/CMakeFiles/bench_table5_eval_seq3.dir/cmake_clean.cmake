file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_eval_seq3.dir/bench_table5_eval_seq3.cc.o"
  "CMakeFiles/bench_table5_eval_seq3.dir/bench_table5_eval_seq3.cc.o.d"
  "bench_table5_eval_seq3"
  "bench_table5_eval_seq3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_eval_seq3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
