# Empty compiler generated dependencies file for bench_ablation_inline.
# This may be replaced when dependencies are built.
