file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_inline.dir/bench_ablation_inline.cc.o"
  "CMakeFiles/bench_ablation_inline.dir/bench_ablation_inline.cc.o.d"
  "bench_ablation_inline"
  "bench_ablation_inline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_inline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
