file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_eval_seq1.dir/bench_table3_eval_seq1.cc.o"
  "CMakeFiles/bench_table3_eval_seq1.dir/bench_table3_eval_seq1.cc.o.d"
  "bench_table3_eval_seq1"
  "bench_table3_eval_seq1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_eval_seq1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
