# Empty dependencies file for bench_ablation_skinny.
# This may be replaced when dependencies are built.
