file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_skinny.dir/bench_ablation_skinny.cc.o"
  "CMakeFiles/bench_ablation_skinny.dir/bench_ablation_skinny.cc.o.d"
  "bench_ablation_skinny"
  "bench_ablation_skinny.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_skinny.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
