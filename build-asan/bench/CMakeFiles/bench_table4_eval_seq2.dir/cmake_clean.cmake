file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_eval_seq2.dir/bench_table4_eval_seq2.cc.o"
  "CMakeFiles/bench_table4_eval_seq2.dir/bench_table4_eval_seq2.cc.o.d"
  "bench_table4_eval_seq2"
  "bench_table4_eval_seq2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_eval_seq2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
