# Empty compiler generated dependencies file for bench_table4_eval_seq2.
# This may be replaced when dependencies are built.
