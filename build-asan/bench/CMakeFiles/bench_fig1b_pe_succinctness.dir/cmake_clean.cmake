file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1b_pe_succinctness.dir/bench_fig1b_pe_succinctness.cc.o"
  "CMakeFiles/bench_fig1b_pe_succinctness.dir/bench_fig1b_pe_succinctness.cc.o.d"
  "bench_fig1b_pe_succinctness"
  "bench_fig1b_pe_succinctness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1b_pe_succinctness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
