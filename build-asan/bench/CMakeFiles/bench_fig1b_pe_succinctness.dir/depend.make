# Empty dependencies file for bench_fig1b_pe_succinctness.
# This may be replaced when dependencies are built.
