file(REMOVE_RECURSE
  "CMakeFiles/bench_hardness.dir/bench_hardness.cc.o"
  "CMakeFiles/bench_hardness.dir/bench_hardness.cc.o.d"
  "bench_hardness"
  "bench_hardness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hardness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
