# Empty compiler generated dependencies file for bench_hardness.
# This may be replaced when dependencies are built.
