file(REMOVE_RECURSE
  "libowlqr.a"
)
