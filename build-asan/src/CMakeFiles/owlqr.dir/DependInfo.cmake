
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chase/canonical_model.cc" "src/CMakeFiles/owlqr.dir/chase/canonical_model.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/chase/canonical_model.cc.o.d"
  "/root/repo/src/chase/certain_answers.cc" "src/CMakeFiles/owlqr.dir/chase/certain_answers.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/chase/certain_answers.cc.o.d"
  "/root/repo/src/chase/homomorphism.cc" "src/CMakeFiles/owlqr.dir/chase/homomorphism.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/chase/homomorphism.cc.o.d"
  "/root/repo/src/core/cost_model.cc" "src/CMakeFiles/owlqr.dir/core/cost_model.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/core/cost_model.cc.o.d"
  "/root/repo/src/core/inconsistency_guard.cc" "src/CMakeFiles/owlqr.dir/core/inconsistency_guard.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/core/inconsistency_guard.cc.o.d"
  "/root/repo/src/core/lin_rewriter.cc" "src/CMakeFiles/owlqr.dir/core/lin_rewriter.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/core/lin_rewriter.cc.o.d"
  "/root/repo/src/core/log_rewriter.cc" "src/CMakeFiles/owlqr.dir/core/log_rewriter.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/core/log_rewriter.cc.o.d"
  "/root/repo/src/core/mapping.cc" "src/CMakeFiles/owlqr.dir/core/mapping.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/core/mapping.cc.o.d"
  "/root/repo/src/core/omq.cc" "src/CMakeFiles/owlqr.dir/core/omq.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/core/omq.cc.o.d"
  "/root/repo/src/core/rewriters.cc" "src/CMakeFiles/owlqr.dir/core/rewriters.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/core/rewriters.cc.o.d"
  "/root/repo/src/core/rewriting_context.cc" "src/CMakeFiles/owlqr.dir/core/rewriting_context.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/core/rewriting_context.cc.o.d"
  "/root/repo/src/core/tree_witness.cc" "src/CMakeFiles/owlqr.dir/core/tree_witness.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/core/tree_witness.cc.o.d"
  "/root/repo/src/core/tw_rewriter.cc" "src/CMakeFiles/owlqr.dir/core/tw_rewriter.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/core/tw_rewriter.cc.o.d"
  "/root/repo/src/core/type_compat.cc" "src/CMakeFiles/owlqr.dir/core/type_compat.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/core/type_compat.cc.o.d"
  "/root/repo/src/core/ucq_rewriter.cc" "src/CMakeFiles/owlqr.dir/core/ucq_rewriter.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/core/ucq_rewriter.cc.o.d"
  "/root/repo/src/cq/cq.cc" "src/CMakeFiles/owlqr.dir/cq/cq.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/cq/cq.cc.o.d"
  "/root/repo/src/cq/gaifman.cc" "src/CMakeFiles/owlqr.dir/cq/gaifman.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/cq/gaifman.cc.o.d"
  "/root/repo/src/cq/splitting.cc" "src/CMakeFiles/owlqr.dir/cq/splitting.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/cq/splitting.cc.o.d"
  "/root/repo/src/cq/tree_decomposition.cc" "src/CMakeFiles/owlqr.dir/cq/tree_decomposition.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/cq/tree_decomposition.cc.o.d"
  "/root/repo/src/data/completion.cc" "src/CMakeFiles/owlqr.dir/data/completion.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/data/completion.cc.o.d"
  "/root/repo/src/data/data_instance.cc" "src/CMakeFiles/owlqr.dir/data/data_instance.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/data/data_instance.cc.o.d"
  "/root/repo/src/data/table_store.cc" "src/CMakeFiles/owlqr.dir/data/table_store.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/data/table_store.cc.o.d"
  "/root/repo/src/ndl/evaluator.cc" "src/CMakeFiles/owlqr.dir/ndl/evaluator.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/ndl/evaluator.cc.o.d"
  "/root/repo/src/ndl/linear_evaluator.cc" "src/CMakeFiles/owlqr.dir/ndl/linear_evaluator.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/ndl/linear_evaluator.cc.o.d"
  "/root/repo/src/ndl/optimize.cc" "src/CMakeFiles/owlqr.dir/ndl/optimize.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/ndl/optimize.cc.o.d"
  "/root/repo/src/ndl/program.cc" "src/CMakeFiles/owlqr.dir/ndl/program.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/ndl/program.cc.o.d"
  "/root/repo/src/ndl/skinny.cc" "src/CMakeFiles/owlqr.dir/ndl/skinny.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/ndl/skinny.cc.o.d"
  "/root/repo/src/ndl/transforms.cc" "src/CMakeFiles/owlqr.dir/ndl/transforms.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/ndl/transforms.cc.o.d"
  "/root/repo/src/ontology/saturation.cc" "src/CMakeFiles/owlqr.dir/ontology/saturation.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/ontology/saturation.cc.o.d"
  "/root/repo/src/ontology/tbox.cc" "src/CMakeFiles/owlqr.dir/ontology/tbox.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/ontology/tbox.cc.o.d"
  "/root/repo/src/ontology/word_graph.cc" "src/CMakeFiles/owlqr.dir/ontology/word_graph.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/ontology/word_graph.cc.o.d"
  "/root/repo/src/pe/pe_formula.cc" "src/CMakeFiles/owlqr.dir/pe/pe_formula.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/pe/pe_formula.cc.o.d"
  "/root/repo/src/reductions/clique.cc" "src/CMakeFiles/owlqr.dir/reductions/clique.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/reductions/clique.cc.o.d"
  "/root/repo/src/reductions/hardest_logcfl.cc" "src/CMakeFiles/owlqr.dir/reductions/hardest_logcfl.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/reductions/hardest_logcfl.cc.o.d"
  "/root/repo/src/reductions/hitting_set.cc" "src/CMakeFiles/owlqr.dir/reductions/hitting_set.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/reductions/hitting_set.cc.o.d"
  "/root/repo/src/reductions/pe_trees.cc" "src/CMakeFiles/owlqr.dir/reductions/pe_trees.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/reductions/pe_trees.cc.o.d"
  "/root/repo/src/reductions/sat.cc" "src/CMakeFiles/owlqr.dir/reductions/sat.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/reductions/sat.cc.o.d"
  "/root/repo/src/syntax/mapping_parser.cc" "src/CMakeFiles/owlqr.dir/syntax/mapping_parser.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/syntax/mapping_parser.cc.o.d"
  "/root/repo/src/syntax/ndl_parser.cc" "src/CMakeFiles/owlqr.dir/syntax/ndl_parser.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/syntax/ndl_parser.cc.o.d"
  "/root/repo/src/syntax/parser.cc" "src/CMakeFiles/owlqr.dir/syntax/parser.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/syntax/parser.cc.o.d"
  "/root/repo/src/syntax/sql_export.cc" "src/CMakeFiles/owlqr.dir/syntax/sql_export.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/syntax/sql_export.cc.o.d"
  "/root/repo/src/syntax/turtle.cc" "src/CMakeFiles/owlqr.dir/syntax/turtle.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/syntax/turtle.cc.o.d"
  "/root/repo/src/util/dot.cc" "src/CMakeFiles/owlqr.dir/util/dot.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/util/dot.cc.o.d"
  "/root/repo/src/util/strings.cc" "src/CMakeFiles/owlqr.dir/util/strings.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/util/strings.cc.o.d"
  "/root/repo/src/workloads/paper_workloads.cc" "src/CMakeFiles/owlqr.dir/workloads/paper_workloads.cc.o" "gcc" "src/CMakeFiles/owlqr.dir/workloads/paper_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
