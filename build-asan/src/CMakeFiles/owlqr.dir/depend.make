# Empty dependencies file for owlqr.
# This may be replaced when dependencies are built.
